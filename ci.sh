#!/usr/bin/env bash
# Local CI pipeline — the source of truth for what "green" means.
#
# The GitHub workflow (.github/workflows/ci.yml) runs these same stages as
# separate jobs; run this script before pushing to get the identical
# verdict locally.
#
# Offline note: this workspace intentionally builds with NO network access.
# External dependencies are vendored as minimal API stand-ins under
# `compat/` (see compat/README.md), so every stage below works against a
# cold cargo home with no registry. Cargo.lock is committed and must stay
# in sync (`--locked` enforces it).
#
# Usage:
#   ./ci.sh          # run every stage
#   ./ci.sh gate     # just the tier-1 gate (build + tests)
#   ./ci.sh fmt | clippy | bench | determinism | simd | faults | metrics | trace | serve | chaos

set -euo pipefail
cd "$(dirname "$0")"

stage() { printf '\n=== %s ===\n' "$1"; }

# Temp-file hygiene: a single EXIT trap over a global list. Stages used to
# set per-function `trap … RETURN` cleanups, but `exit 1` on a failure path
# (or `set -e` aborting a cargo invocation) skips RETURN traps entirely and
# leaked the files; EXIT fires on every termination path. The helpers
# assign into a named variable (`mktemp_tracked t1`) rather than printing,
# because `t1=$(mktemp_tracked)` would grow TMP_CLEANUP inside a command
# substitution subshell where the parent never sees it.
TMP_CLEANUP=()
cleanup_tmp() {
    if [ "${#TMP_CLEANUP[@]}" -gt 0 ]; then
        rm -rf -- "${TMP_CLEANUP[@]}"
    fi
}
trap cleanup_tmp EXIT
mktemp_tracked()  { local t; t=$(mktemp);    TMP_CLEANUP+=("$t"); printf -v "$1" '%s' "$t"; }
mktempd_tracked() { local t; t=$(mktemp -d); TMP_CLEANUP+=("$t"); printf -v "$1" '%s' "$t"; }

run_gate() {
    stage "tier-1 gate: cargo build --release && cargo test -q"
    cargo build --release --locked
    cargo test -q --locked
}

run_fmt() {
    stage "cargo fmt --check"
    cargo fmt --all -- --check
}

run_clippy() {
    stage "cargo clippy --workspace -- -D warnings"
    cargo clippy --workspace --all-targets --locked -- -D warnings
}

run_bench() {
    stage "benches compile: cargo bench --no-run"
    cargo bench --no-run --workspace --locked
    # Bench binaries are not covered by `cargo bench --no-run`; keep the
    # serve-throughput sweep compiling (it backs BENCH_serve.json).
    cargo build --release --locked -p ist-bench --bin bench_serve --bin bench_gemm
}

run_determinism() {
    stage "determinism guard: same-seed losses across IST_THREADS=1 vs 4"
    # The quickstart trains with verbose per-epoch losses on stderr. The
    # reported losses must be byte-identical regardless of pool size: the
    # worker pool partitions work, it must never change results.
    local t1 t4
    mktemp_tracked t1; mktemp_tracked t4
    IST_THREADS=1 cargo run --release --locked --example quickstart 2>"$t1" >/dev/null
    IST_THREADS=4 cargo run --release --locked --example quickstart 2>"$t4" >/dev/null
    if ! diff <(grep '^epoch' "$t1") <(grep '^epoch' "$t4"); then
        echo "FAIL: training losses differ between IST_THREADS=1 and IST_THREADS=4" >&2
        exit 1
    fi
    echo "losses identical across thread counts:"
    grep '^epoch' "$t1"
}

run_simd() {
    stage "SIMD dispatch gate: per-level equivalence, loss/scores invariance, env hygiene"
    # Kernel level: every dispatch level this host supports must be bitwise
    # identical to scalar (simd_equivalence sweeps available_levels
    # internally), and the full training pipeline must replay the same loss
    # stream and serving scores at every level (simd_determinism).
    cargo test -q --release --locked -p ist-tensor --test simd_equivalence
    cargo test -q --release --locked --test simd_determinism

    # Quickstart losses: forcing IST_SIMD=scalar must not change a bit
    # against the auto-detected best level, and the best level must stay
    # thread-count invariant (SIMD lanes never cross pool partitions).
    local s1 b1 b4
    mktemp_tracked s1; mktemp_tracked b1; mktemp_tracked b4
    IST_SIMD=scalar IST_THREADS=1 \
        cargo run --release --locked --example quickstart 2>"$s1" >/dev/null
    IST_THREADS=1 cargo run --release --locked --example quickstart 2>"$b1" >/dev/null
    IST_THREADS=4 cargo run --release --locked --example quickstart 2>"$b4" >/dev/null
    if ! diff <(grep '^epoch' "$s1") <(grep '^epoch' "$b1"); then
        echo "FAIL: IST_SIMD=scalar changed the quickstart losses vs the detected level" >&2
        exit 1
    fi
    if ! diff <(grep '^epoch' "$b1") <(grep '^epoch' "$b4") >/dev/null; then
        echo "FAIL: losses differ across IST_THREADS=1 vs 4 at the detected SIMD level" >&2
        exit 1
    fi
    echo "quickstart losses identical: IST_SIMD=scalar vs detected, 1 vs 4 threads"

    # Serving: the report's scores_crc must be bitwise identical whether
    # scoring runs scalar or at the detected best level.
    local work crc_scalar crc_best
    mktempd_tracked work
    cargo run --release --locked --bin isrec -- \
        generate --world beauty --scale 0.25 --seed 42 --out "$work/data" >/dev/null
    cargo run --release --locked --bin isrec -- \
        train --data "$work/data" --snapshot "$work/model.bin" --epochs 2 --max-len 20 >/dev/null
    IST_SIMD=scalar cargo run --release --locked --bin isrec -- \
        serve --data "$work/data" --snapshot "$work/model.bin" \
        --synthetic 500 --report "$work/report_scalar.json" >/dev/null
    cargo run --release --locked --bin isrec -- \
        serve --data "$work/data" --snapshot "$work/model.bin" \
        --synthetic 500 --report "$work/report_best.json" >/dev/null
    crc_scalar=$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['scores_crc'])" \
        "$work/report_scalar.json")
    crc_best=$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['scores_crc'])" \
        "$work/report_best.json")
    if [ "$crc_scalar" != "$crc_best" ]; then
        echo "FAIL: serve scores_crc differs: IST_SIMD=scalar $crc_scalar vs detected $crc_best" >&2
        exit 1
    fi
    echo "serve scores_crc identical under IST_SIMD=scalar and the detected level ($crc_best)"

    # Env hygiene: a malformed IST_SIMD warns exactly once, falls back to
    # the detected level, and changes nothing.
    local glog warns
    mktemp_tracked glog
    IST_SIMD=garbage IST_THREADS=1 \
        cargo run --release --locked --example quickstart 2>"$glog" >/dev/null
    warns=$(grep -c 'malformed IST_SIMD' "$glog" || true)
    if [ "$warns" -ne 1 ]; then
        echo "FAIL: expected exactly one malformed-IST_SIMD warning, saw $warns" >&2
        grep 'IST_SIMD' "$glog" >&2 || true
        exit 1
    fi
    if ! diff <(grep '^epoch' "$glog") <(grep '^epoch' "$b1") >/dev/null; then
        echo "FAIL: IST_SIMD=garbage changed the losses (must fall back to detected)" >&2
        exit 1
    fi
    echo "malformed IST_SIMD warned exactly once and fell back to the detected level"
}

run_faults() {
    stage "fault-injection gate: quickstart survives injected faults"
    # Inject a NaN loss mid-training plus two sabotaged checkpoint writes;
    # the run must still finish with finite losses, log its recoveries,
    # and leave at least one valid checkpoint behind (see DESIGN.md §7).
    local log ckpt
    mktemp_tracked log; mktempd_tracked ckpt
    IST_FAULTS='loss_nan@e1s3,torn_write@ckpt2,bitflip@ckpt1' IST_CKPT_DIR="$ckpt" \
        cargo run --release --locked --example quickstart >"$log" 2>&1
    if ! grep -q '^epoch' "$log"; then
        echo "FAIL: no per-epoch losses in output" >&2
        exit 1
    fi
    if grep '^epoch' "$log" | grep -qiE 'nan|inf'; then
        echo "FAIL: non-finite epoch loss under fault injection" >&2
        grep '^epoch' "$log" >&2
        exit 1
    fi
    if ! grep -q '^recovery:' "$log"; then
        echo "FAIL: recovery log is empty — injected faults went unhandled" >&2
        exit 1
    fi
    if ! ls "$ckpt"/ckpt-*.ist >/dev/null 2>&1; then
        echo "FAIL: no checkpoint files written" >&2
        exit 1
    fi
    echo "fault injection survived; recovery log:"
    grep '^recovery:' "$log" | sort -u
}

run_metrics() {
    stage "observability gate: IST_METRICS=json emits valid, complete telemetry"
    # Run the quickstart with JSON telemetry into a file (checkpoints on so
    # ckpt.write spans appear), then validate every line is a JSON object
    # carrying the schema keys, and that the required probes all reported.
    local metrics ckpt t1 t4
    mktemp_tracked metrics; mktempd_tracked ckpt
    mktemp_tracked t1; mktemp_tracked t4
    IST_METRICS=json IST_METRICS_OUT="$metrics" IST_CKPT_DIR="$ckpt" \
        cargo run --release --locked --example quickstart >/dev/null 2>&1
    python3 - "$metrics" <<'EOF'
import json, sys

required = {"tensor.gemm", "train.epoch", "ckpt.write", "eval.protocol"}
seen = set()
with open(sys.argv[1]) as f:
    lines = [l for l in f if l.strip()]
if not lines:
    sys.exit("FAIL: metrics file is empty")
for i, line in enumerate(lines, 1):
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as e:
        sys.exit(f"FAIL: line {i} is not valid JSON ({e}): {line!r}")
    if "span" in obj:
        if "elapsed_us" not in obj:
            sys.exit(f"FAIL: span line {i} lacks elapsed_us: {line!r}")
        seen.add(obj["span"])
    elif "counter" in obj:
        if "value" not in obj:
            sys.exit(f"FAIL: counter line {i} lacks value: {line!r}")
    elif "histogram" in obj:
        if not {"count", "p50", "p95", "p99"} <= obj.keys():
            sys.exit(f"FAIL: histogram line {i} lacks quantiles: {line!r}")
    else:
        sys.exit(f"FAIL: line {i} is not a span/counter/histogram: {line!r}")
missing = required - seen
if missing:
    sys.exit(f"FAIL: no telemetry from probes: {sorted(missing)}")
print(f"validated {len(lines)} telemetry lines; spans cover {sorted(required)}")
EOF
    # Telemetry on must not break the determinism guarantee either.
    IST_METRICS=json IST_METRICS_OUT=/dev/null IST_THREADS=1 \
        cargo run --release --locked --example quickstart 2>"$t1" >/dev/null
    IST_METRICS=json IST_METRICS_OUT=/dev/null IST_THREADS=4 \
        cargo run --release --locked --example quickstart 2>"$t4" >/dev/null
    if ! diff <(grep '^epoch' "$t1") <(grep '^epoch' "$t4"); then
        echo "FAIL: with IST_METRICS=json, losses differ across IST_THREADS=1 vs 4" >&2
        exit 1
    fi
    echo "losses identical across thread counts with telemetry enabled"
}

run_trace() {
    stage "trace/profiler gate: chrome-trace schema + op attribution + bench_diff"
    # `isrec profile` trains a scaled run with the event ring recording and
    # reports autograd op-attribution coverage. IST_THREADS=4 so pool tasks
    # actually parallelise (single-core runners would otherwise never emit
    # pool.task scopes).
    local trace log
    mktemp_tracked trace; mktemp_tracked log
    IST_THREADS=4 cargo run --release --locked --bin isrec -- \
        profile --trace-out "$trace" | tee "$log"
    python3 - "$trace" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    events = json.load(f)
if not isinstance(events, list) or not events:
    sys.exit("FAIL: trace is not a non-empty JSON array")
stacks, names, pids, last_ts = {}, set(), set(), None
begins = ends = 0
for ev in events:
    ph = ev["ph"]
    pids.add(ev["pid"])
    if ph == "M":
        continue
    if ph == "X":
        # Complete events (slow-request exemplars) carry their own dur and
        # sit on a dedicated track — exempt from B/E ordering and stacks.
        if "dur" not in ev:
            sys.exit(f"FAIL: X event without dur: {ev}")
        continue
    ts = ev["ts"]
    if last_ts is not None and ts < last_ts:
        sys.exit(f"FAIL: events out of timestamp order at ts={ts}")
    last_ts = ts
    if ph == "B":
        begins += 1
        names.add(ev["name"])
        stacks.setdefault(ev["tid"], []).append(ev["name"])
    elif ph == "E":
        ends += 1
        stack = stacks.get(ev["tid"]) or sys.exit(f"FAIL: E without B on tid {ev['tid']}")
        if stack.pop() != ev["name"]:
            sys.exit(f"FAIL: mismatched B/E pair on tid {ev['tid']}")
    elif ph != "I":
        sys.exit(f"FAIL: unexpected phase {ph!r}")
if begins != ends or any(stacks.values()):
    sys.exit(f"FAIL: unbalanced B/E events ({begins} vs {ends})")
if len(pids) != 1:
    sys.exit(f"FAIL: inconsistent pids {sorted(pids)}")
required = {"pool.task", "nn.attention", "autograd.backward", "train.epoch"}
missing = required - names
if missing:
    sys.exit(f"FAIL: stages missing from timeline: {sorted(missing)}")
print(f"validated {len(events)} trace events; stages cover {sorted(required)}")
EOF
    # The profiler must attribute ≥95% of measured forward+backward time
    # to named autograd ops (ISSUE acceptance bar).
    python3 - "$log" <<'EOF'
import re, sys

text = open(sys.argv[1]).read()
m = re.search(r"autograd op attribution: ([0-9.]+)%", text)
if not m:
    sys.exit("FAIL: profile run printed no attribution coverage")
cov = float(m.group(1))
if cov < 95.0:
    sys.exit(f"FAIL: op attribution {cov}% is below the 95% bar")
print(f"op attribution coverage {cov}% >= 95%")
EOF
    # Bench regression check: warn-only here (shared-runner throughput is
    # too noisy to gate merges on), hard-fail when run by hand via
    # `cargo run --release -p ist-bench --bin bench_diff`.
    if ! cargo run --release --locked -p ist-bench --bin bench_diff; then
        echo "WARN: bench_diff reported a GEMM throughput regression (soft gate)" >&2
    fi
}

run_serve() {
    stage "serving gate: batched inference, live scrape soak, access log, bitwise invariance"
    # Train a small checkpoint, replay a synthetic 2000-request stream
    # through `isrec serve` as a *live soak*: the scrape endpoint
    # (IST_METRICS_ADDR) is polled while requests flow, the structured
    # access log records every request, and the JSON report (v4: latency +
    # SLO + exemplars) is validated. Then re-serve the same stream under
    # IST_SERVE_BATCH=1 vs 32, IST_THREADS=1 vs 4, and
    # IST_SERVE_SHARDS=1/2/4 — the result fingerprint must be bitwise
    # identical in all of them (batching/parallelism/sharding/observability
    # must never change scores).
    local work
    mktempd_tracked work
    cargo run --release --locked --bin isrec -- \
        generate --world beauty --scale 0.25 --seed 42 --out "$work/data" >/dev/null
    cargo run --release --locked --bin isrec -- \
        train --data "$work/data" --snapshot "$work/model.bin" \
        --checkpoint-dir "$work/ckpts" --epochs 2 --max-len 20 >/dev/null
    # Build first so the background soak doesn't race a cold compile.
    cargo build --release --locked --bin isrec >/dev/null
    # The soak: port 0 picks a free port (printed to stderr); --linger-ms
    # keeps the endpoint up after the report so the scraper's final pass
    # can never lose the race. The process exits on its own — no kill, so
    # the telemetry flush (--metrics-out) always runs.
    IST_METRICS_ADDR=127.0.0.1:0 ./target/release/isrec \
        serve --data "$work/data" --checkpoint-dir "$work/ckpts" \
        --synthetic 2000 --report "$work/report_main.json" \
        --metrics-out "$work/metrics.jsonl" \
        --access-log "$work/access.jsonl" --linger-ms 10000 \
        >"$work/soak.out" 2>"$work/soak.err" &
    local soak_pid=$!
    if ! python3 - "$work/soak.err" "$work/report_main.json" "$work/final_scrape.txt" <<'EOF'
import json, re, sys, time, urllib.request

err_path, report_path, scrape_out = sys.argv[1:4]

def fail(msg):
    sys.exit(f"FAIL: {msg}")

def wait_for(what, predicate, timeout_s):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        got = predicate()
        if got is not None:
            return got
        time.sleep(0.2)
    fail(f"timed out waiting for {what}")

def bound_addr():
    try:
        text = open(err_path).read()
    except OSError:
        return None
    m = re.search(r"metrics endpoint listening on (http://\S+)", text)
    return m.group(1) if m else None

base = wait_for("the soak to print its bound address", bound_addr, 120)

def get(path):
    with urllib.request.urlopen(base + path, timeout=5) as resp:
        return resp.status, resp.read().decode()

def check_exposition(body):
    """Prometheus text exposition: comments or `name[{labels}] value`."""
    for line in body.splitlines():
        if not line.strip():
            continue
        if line.startswith("#"):
            if not line.startswith("# TYPE "):
                fail(f"unknown comment line: {line!r}")
            continue
        name, _, value = line.rpartition(" ")
        bare = name.split("{")[0]
        if not re.fullmatch(r"[A-Za-z_:][A-Za-z0-9_:]*", bare):
            fail(f"bad metric name in: {line!r}")
        float(value)

def sample(body, metric):
    for line in body.splitlines():
        if line.split(" ")[0] == metric:
            return float(line.rsplit(" ", 1)[1])
    return None

# Poll /metrics while the soak serves: every scrape must be valid
# exposition and serve_requests_total must climb monotonically to exactly
# the driver's 2000 requests.
last = 0.0
def requests_done():
    global last
    status, body = get("/metrics")
    if status != 200:
        fail(f"/metrics answered {status}")
    check_exposition(body)
    n = sample(body, "serve_requests_total")
    if n is None:
        return None
    if n < last:
        fail(f"serve_requests_total went backwards: {n} < {last}")
    last = n
    if n > 2000:
        fail(f"serve_requests_total overshot the driver: {n}")
    return body if n == 2000 else None

final = wait_for("serve_requests_total to reach 2000", requests_done, 300)
with open(scrape_out, "w") as f:
    f.write(final)
for family in ("serve_request_us_bucket", "serve_slo_p99_us", "serve_queue_depth",
               "serve_batch_size_count"):
    if family not in final:
        fail(f"final scrape lacks {family}:\n{final}")

# The engine is healthy: /healthz answers 200 and reports non-degraded
# with a live SLO block.
status, body = get("/healthz")
if status != 200:
    fail(f"/healthz answered {status}: {body}")
health = json.loads(body)
eng = health.get("engine") or fail(f"/healthz has no engine block: {body}")
if eng["degraded"]:
    fail(f"engine degraded after a fault-free soak: {body}")
if eng["slo"]["total_observed"] != 2000:
    fail(f"SLO monitor missed requests: {eng['slo']}")

wait_for("the serve report to be written",
         lambda: True if __import__("os").path.exists(report_path) else None, 60)
print(f"live soak ok: scraped {base}, serve_requests_total reached 2000, engine healthy")
EOF
    then
        kill "$soak_pid" 2>/dev/null || true
        wait "$soak_pid" 2>/dev/null || true
        echo "FAIL: live-soak scrape validation failed; soak stderr:" >&2
        tail -20 "$work/soak.err" >&2 || true
        exit 1
    fi
    wait "$soak_pid"
    cat "$work/soak.out"
    python3 - "$work/report_main.json" <<'EOF'
import json, math, sys

r = json.load(open(sys.argv[1]))
if r.get("schema") != "isrec.serve_report.v4":
    sys.exit(f"FAIL: unexpected report schema {r.get('schema')!r}")
slo = r["slo"]
if not slo["active"]:
    sys.exit("FAIL: SLO monitor inactive despite access log + endpoint")
if slo["total_observed"] != r["requests"]:
    sys.exit(f"FAIL: SLO observed {slo['total_observed']} of {r['requests']} requests")
if slo["p99_us"] <= 0:
    sys.exit(f"FAIL: SLO p99 not positive: {slo}")
if slo["error_pct"] != 0 or slo["error_burn"] != 0:
    sys.exit(f"FAIL: fault-free soak burned error budget: {slo}")
exs = r["exemplars"]
if not exs or len(exs) > 8:
    sys.exit(f"FAIL: exemplar reservoir has {len(exs)} entries")
for ex in exs:
    if ex["total_us"] <= 0 or "score_us" not in ex or "queue_us" not in ex:
        sys.exit(f"FAIL: malformed exemplar: {ex}")
if any(exs[i]["total_us"] < exs[i + 1]["total_us"] for i in range(len(exs) - 1)):
    sys.exit("FAIL: exemplars not sorted slowest-first")
shard = r["shard"]
if shard["count"] < 1:
    sys.exit(f"FAIL: shard block reports no shards in effect: {shard}")
p99 = r["latency_us"]["p99"]
if not (isinstance(p99, (int, float)) and math.isfinite(p99) and p99 > 0):
    sys.exit(f"FAIL: p99 latency is not a positive finite number: {p99!r}")
if r["batch"]["avg"] <= 1.0:
    sys.exit(f"FAIL: average batch size {r['batch']['avg']} — micro-batcher never coalesced")
if r["cache"]["hit_rate"] <= 0.0:
    sys.exit("FAIL: zero cache hit rate on a repeated-user stream")
if r["requests"] != 2000:
    sys.exit(f"FAIL: expected 2000 requests, saw {r['requests']}")
# Fault-free, the resilience layer must be invisible: everything answered,
# nothing shed/timed out/degraded, zero panics.
res = r["resilience"]
if res["answered"] != r["requests"] or res["failed"] != 0 or res["errors"]:
    sys.exit(f"FAIL: fault-free run reported failures: {res}")
if any(res[k] != 0 for k in ("shed", "timed_out", "scorer_panics", "respawns", "degraded_answers")):
    sys.exit(f"FAIL: fault-free run tripped resilience counters: {res}")
if res["degraded"]:
    sys.exit("FAIL: fault-free run ended degraded")
print(f"report ok: p99={p99}us avg_batch={r['batch']['avg']} hit_rate={r['cache']['hit_rate']}")
EOF
    python3 - "$work/access.jsonl" <<'EOF'
import json, sys

stages = ("queue_us", "batch_us", "cache_us", "encode_us", "score_us", "merge_us", "reply_us")
seen = set()
lines = [l for l in open(sys.argv[1]) if l.strip()]
if len(lines) != 2000:
    sys.exit(f"FAIL: access log has {len(lines)} lines for 2000 requests")
for i, line in enumerate(lines, 1):
    try:
        rec = json.loads(line)
    except json.JSONDecodeError as e:
        sys.exit(f"FAIL: access-log line {i} is not valid JSON ({e}): {line!r}")
    missing = ({"req", "outcome", "total_us", "batch", "shards", "cache_hit"}
               | set(stages)) - rec.keys()
    if missing:
        sys.exit(f"FAIL: access-log line {i} lacks {sorted(missing)}: {line!r}")
    if rec["req"] in seen:
        sys.exit(f"FAIL: duplicate trace id {rec['req']}")
    seen.add(rec["req"])
    if rec["outcome"] != "ok":
        sys.exit(f"FAIL: fault-free soak logged outcome {rec['outcome']!r}: {line!r}")
    if sum(rec[s] for s in stages) > rec["total_us"]:
        sys.exit(f"FAIL: stage breakdown exceeds total latency: {line!r}")
    if rec["batch"] < 1 or rec["shards"] < 1:
        sys.exit(f"FAIL: answered request without batch/shard info: {line!r}")
hits = sum(json.loads(l)["cache_hit"] for l in lines)
if hits == 0:
    sys.exit("FAIL: access log saw zero cache hits on a repeated-user stream")
print(f"access log ok: 2000 unique traced requests, stage sums consistent, {hits} cache hits")
EOF
    python3 - "$work/metrics.jsonl" <<'EOF'
import json, sys

spans, hists = set(), set()
for line in open(sys.argv[1]):
    if not line.strip():
        continue
    obj = json.loads(line)
    spans.add(obj.get("span"))
    hists.add(obj.get("histogram"))
missing = {"serve.request", "serve.batch"} - spans
if missing:
    sys.exit(f"FAIL: serve spans missing from telemetry: {sorted(missing)}")
if "serve.request_us" not in hists:
    sys.exit("FAIL: no serve.request_us latency histogram in telemetry")
print("serve telemetry ok: spans + latency histogram present")
EOF
    local variant crc crcs=()
    for variant in "IST_SERVE_BATCH=1" "IST_SERVE_BATCH=32" "IST_THREADS=1" "IST_THREADS=4" \
                   "IST_SERVE_SHARDS=1" "IST_SERVE_SHARDS=2" "IST_SERVE_SHARDS=4"; do
        env "$variant" cargo run --release --locked --bin isrec -- \
            serve --data "$work/data" --checkpoint-dir "$work/ckpts" \
            --synthetic 500 --report "$work/report_variant.json" >/dev/null
        crc=$(python3 -c "import json,sys; print(json.load(open(sys.argv[1]))['scores_crc'])" \
            "$work/report_variant.json")
        echo "  $variant → scores_crc $crc"
        crcs+=("$crc")
    done
    if [ "$(printf '%s\n' "${crcs[@]}" | sort -u | wc -l)" -ne 1 ]; then
        echo "FAIL: scores are not bitwise identical across batch/thread configs" >&2
        exit 1
    fi
    echo "scores bitwise identical across IST_SERVE_BATCH=1/32, IST_THREADS=1/4, IST_SERVE_SHARDS=1/2/4"
}

run_chaos() {
    stage "serving chaos gate: typed responses under injected faults + bitwise fault-free rerun"
    # Train once, then serve the same synthetic stream three times:
    #   1. fault-free baseline → record scores_crc, resilience all-zero;
    #   2. chaos soak under IST_SERVE_FAULTS (slow batch, scorer panics,
    #      corrupt respawn reload) with sharded scoring (IST_SERVE_SHARDS=4)
    #      and a per-request deadline — every
    #      request must end in a typed response before its deadline and the
    #      engine must recover (no lingering degraded mode, no deadlock);
    #   3. fault-free rerun → scores_crc bitwise identical to the baseline
    #      (the resilience layer must be invisible when nothing fails).
    local work
    mktempd_tracked work
    cargo run --release --locked --bin isrec -- \
        generate --world beauty --scale 0.25 --seed 42 --out "$work/data" >/dev/null
    cargo run --release --locked --bin isrec -- \
        train --data "$work/data" --snapshot "$work/model.bin" --epochs 2 --max-len 20 >/dev/null

    cargo run --release --locked --bin isrec -- \
        serve --data "$work/data" --snapshot "$work/model.bin" \
        --synthetic 600 --report "$work/report_baseline.json" >/dev/null
    IST_SERVE_FAULTS='slow@batch2:100,panic@batch4,corrupt_reload@2,panic@batch9' \
        IST_SERVE_SHARDS=4 \
        cargo run --release --locked --bin isrec -- \
        serve --data "$work/data" --snapshot "$work/model.bin" \
        --synthetic 600 --deadline-ms 2000 --allow-errors 1 \
        --report "$work/report_chaos.json"
    cargo run --release --locked --bin isrec -- \
        serve --data "$work/data" --snapshot "$work/model.bin" \
        --synthetic 600 --report "$work/report_rerun.json" >/dev/null

    python3 - "$work/report_baseline.json" "$work/report_chaos.json" "$work/report_rerun.json" <<'EOF'
import json, sys

base, chaos, rerun = (json.load(open(p)) for p in sys.argv[1:4])
for name, r in (("baseline", base), ("chaos", chaos), ("rerun", rerun)):
    if r.get("schema") != "isrec.serve_report.v4":
        sys.exit(f"FAIL: {name}: unexpected report schema {r.get('schema')!r}")
if chaos["shard"]["count"] != 4:
    sys.exit(f"FAIL: chaos run ignored IST_SERVE_SHARDS=4: {chaos['shard']}")

# Chaos soak: every request accounted for with a typed outcome.
res = chaos["resilience"]
if res["answered"] + res["failed"] != chaos["requests"]:
    sys.exit(f"FAIL: chaos run lost requests: {res} of {chaos['requests']}")
if sum(res["errors"].values()) != res["failed"]:
    sys.exit(f"FAIL: failed/errors mismatch: {res}")
allowed = {"invalid", "deadline", "shed", "panic", "internal", "shutdown"}
stray = set(res["errors"]) - allowed
if stray:
    sys.exit(f"FAIL: untyped error kinds {sorted(stray)}")
if res["scorer_panics"] < 1 or res["respawns"] < 1:
    sys.exit(f"FAIL: injected panics did not register: {res}")
if res["degraded"]:
    sys.exit(f"FAIL: engine still degraded after the chaos run: {res}")
# Deadline honored: no request (even poisoned/stalled ones) blocked past
# its 2000ms budget plus scheduling slack.
if chaos["latency_us"]["max"] > 4_000_000:
    sys.exit(f"FAIL: a request blocked {chaos['latency_us']['max']}us past its deadline")

# Fault-free runs: resilience invisible, scores bitwise identical.
for name, r in (("baseline", base), ("rerun", rerun)):
    res = r["resilience"]
    if res["failed"] != 0 or res["errors"] or res["degraded"]:
        sys.exit(f"FAIL: fault-free {name} run reported failures: {res}")
if base["scores_crc"] != rerun["scores_crc"]:
    sys.exit(
        f"FAIL: fault-free rerun CRC {rerun['scores_crc']} != baseline {base['scores_crc']} "
        "— the resilience layer changed scores"
    )
print(
    f"chaos ok: {chaos['resilience']['answered']}/{chaos['requests']} answered, "
    f"errors {chaos['resilience']['errors']}, "
    f"panics {chaos['resilience']['scorer_panics']}, respawns {chaos['resilience']['respawns']}; "
    f"fault-free CRC identical ({base['scores_crc']})"
)
EOF
}

case "${1:-all}" in
    gate)        run_gate ;;
    fmt)         run_fmt ;;
    clippy)      run_clippy ;;
    bench)       run_bench ;;
    determinism) run_determinism ;;
    simd)        run_simd ;;
    faults)      run_faults ;;
    metrics)     run_metrics ;;
    trace)       run_trace ;;
    serve)       run_serve ;;
    chaos)       run_chaos ;;
    all)
        run_gate
        run_fmt
        run_clippy
        run_bench
        run_determinism
        run_simd
        run_faults
        run_metrics
        run_trace
        run_serve
        run_chaos
        printf '\nci.sh: all stages passed\n'
        ;;
    *)
        echo "usage: $0 [all|gate|fmt|clippy|bench|determinism|simd|faults|metrics|trace|serve|chaos]" >&2
        exit 2
        ;;
esac
