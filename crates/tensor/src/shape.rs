//! Shape algebra: ranks, element counts, row-major strides and NumPy-style
//! broadcasting rules.

/// A tensor shape: the extent of each axis, outermost first.
///
/// A rank-0 shape (`[]`) denotes a scalar with exactly one element.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of all extents; 1 for scalars).
    pub fn num_elements(&self) -> usize {
        self.0.iter().product()
    }

    /// Borrow the extents.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }
}

impl std::fmt::Debug for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

/// Row-major strides for `dims`: the distance (in elements) between
/// consecutive indices along each axis.
///
/// ```
/// assert_eq!(ist_tensor::strides_for(&[2, 3, 4]), vec![12, 4, 1]);
/// ```
pub fn strides_for(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; dims.len()];
    for i in (0..dims.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * dims[i + 1];
    }
    strides
}

/// Number of elements implied by `dims`.
pub fn num_elements(dims: &[usize]) -> usize {
    dims.iter().product()
}

/// Computes the broadcast shape of `a` and `b` under NumPy rules:
/// shapes are right-aligned, and each axis pair must be equal or contain a 1.
///
/// Returns `None` when the shapes are incompatible.
///
/// ```
/// use ist_tensor::broadcast_shapes;
/// assert_eq!(broadcast_shapes(&[4, 1, 3], &[2, 3]), Some(vec![4, 2, 3]));
/// assert_eq!(broadcast_shapes(&[4, 2], &[3]), None);
/// ```
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    let rank = a.len().max(b.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        // Right-aligned axis extents; missing axes behave like extent 1.
        let da = if i < rank - a.len() {
            1
        } else {
            a[i - (rank - a.len())]
        };
        let db = if i < rank - b.len() {
            1
        } else {
            b[i - (rank - b.len())]
        };
        if da == db || db == 1 {
            out[i] = da.max(db);
        } else if da == 1 {
            out[i] = db;
        } else {
            return None;
        }
    }
    Some(out)
}

/// Maps a flat index in the broadcast output shape to the flat index in an
/// input with shape `in_dims` (right-aligned, broadcast axes contribute 0).
pub fn broadcast_source_index(flat: usize, out_dims: &[usize], in_dims: &[usize]) -> usize {
    let out_strides = strides_for(out_dims);
    let in_strides = strides_for(in_dims);
    let offset = out_dims.len() - in_dims.len();
    let mut src = 0usize;
    let mut rem = flat;
    for (axis, (&extent, &stride)) in out_dims.iter().zip(out_strides.iter()).enumerate() {
        let idx = rem / stride;
        rem %= stride;
        debug_assert!(idx < extent);
        if axis >= offset {
            let in_axis = axis - offset;
            if in_dims[in_axis] != 1 {
                src += idx * in_strides[in_axis];
            }
        }
    }
    src
}

/// Validates that `dims` describes the same number of elements as `len`.
/// Panics otherwise — reshape misuse is a programming error, not a runtime
/// condition.
pub fn check_reshape(len: usize, dims: &[usize]) {
    assert_eq!(
        num_elements(dims),
        len,
        "cannot reshape {} elements into {:?}",
        len,
        dims
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_for(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_for(&[5]), vec![1]);
        assert_eq!(strides_for(&[]), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_basic() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shapes(&[3], &[2, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shapes(&[], &[2, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shapes(&[4, 2], &[3]), None);
    }

    #[test]
    fn broadcast_source_index_maps_correctly() {
        // out [2,3], in [1,3]: rows collapse.
        let out = [2, 3];
        let inp = [1, 3];
        let idx: Vec<usize> = (0..6)
            .map(|f| broadcast_source_index(f, &out, &inp))
            .collect();
        assert_eq!(idx, vec![0, 1, 2, 0, 1, 2]);
        // in [3]: right-aligned, same result.
        let idx: Vec<usize> = (0..6)
            .map(|f| broadcast_source_index(f, &out, &[3]))
            .collect();
        assert_eq!(idx, vec![0, 1, 2, 0, 1, 2]);
        // in [2,1]: columns collapse.
        let idx: Vec<usize> = (0..6)
            .map(|f| broadcast_source_index(f, &out, &[2, 1]))
            .collect();
        assert_eq!(idx, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_check_panics() {
        check_reshape(6, &[4, 2]);
    }

    #[test]
    fn shape_struct() {
        let s = Shape::from(&[2usize, 3][..]);
        assert_eq!(s.rank(), 2);
        assert_eq!(s.num_elements(), 6);
        assert_eq!(s.dims(), &[2, 3]);
        assert_eq!(format!("{:?}", s), "[2, 3]");
    }
}
