//! Integration tests for the trace exporter and the sink's concurrency
//! story. Both manipulate process-global obs state, so every test grabs
//! `LOCK` first (tests in one binary run in parallel).

use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard};

use ist_obs::trace;

static LOCK: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// A `Write` sink tests can read back after handing ownership to obs.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

static STRESS_COUNTER: ist_obs::Counter = ist_obs::Counter::new("stress.events");

/// `set_output` racing concurrent span/counter emitters must neither
/// deadlock, nor panic, nor corrupt the line structure of the stream.
#[test]
fn concurrent_emitters_survive_sink_swaps() {
    let _g = serial();
    ist_obs::reset();
    ist_obs::set_mode(ist_obs::Mode::Json);
    let buf = SharedBuf::default();
    ist_obs::set_output(Box::new(buf.clone()));

    let workers: Vec<_> = (0..4)
        .map(|w| {
            std::thread::spawn(move || {
                for i in 0..50 {
                    let mut span = ist_obs::Span::enter("stress.span");
                    span.add_field("worker", w as u64);
                    span.add_field("i", i as u64);
                    STRESS_COUNTER.add(1);
                }
            })
        })
        .collect();
    // Race the sink: swap the output several times mid-emission.
    for _ in 0..8 {
        ist_obs::set_output(Box::new(buf.clone()));
        std::thread::yield_now();
    }
    for w in workers {
        w.join().expect("emitter thread panicked");
    }
    ist_obs::flush();
    ist_obs::set_mode(ist_obs::Mode::Off);

    let text = String::from_utf8_lossy(&buf.0.lock().unwrap()).into_owned();
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(
        lines.iter().any(|l| l.contains("\"stress.span\"")),
        "no span lines survived the sink swaps:\n{text}"
    );
    // Writes are line-atomic: every line is one complete JSON object even
    // while four threads shared the sink.
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "interleaved/torn line: {line}"
        );
    }
    assert_eq!(STRESS_COUNTER.get(), 200);
}

/// The exported chrome-trace document is structurally valid: a JSON array
/// where every `B` has a matching `E` on the same thread, in timestamp
/// order, with consistent pids.
#[test]
fn trace_export_schema() {
    let _g = serial();
    trace::reset();
    trace::set_enabled(true);

    {
        let _outer = trace::scope("outer");
        {
            let _inner = trace::scope_cat("inner", "test");
        }
        let _sibling = trace::scope("sibling");
    }
    let workers: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(|| {
                for _ in 0..10 {
                    let _s = trace::scope("worker.scope");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let json = trace::export_json();
    trace::set_enabled(false);
    trace::reset();

    let doc = json.trim();
    assert!(
        doc.starts_with('[') && doc.ends_with(']'),
        "not a JSON array"
    );

    // Tokenise events the same way CI's python validator sees them: each
    // event is one object on its own line.
    let mut begins = 0usize;
    let mut ends = 0usize;
    let mut stacks: std::collections::HashMap<String, Vec<String>> = Default::default();
    let mut last_ts: Option<f64> = None;
    let mut pids: std::collections::HashSet<String> = Default::default();
    for line in doc.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            continue;
        }
        let field = |key: &str| -> Option<String> {
            let pat = format!("\"{key}\":");
            let at = line.find(&pat)?;
            let rest = line[at + pat.len()..].trim_start();
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            Some(rest[..end].trim().trim_matches('"').to_string())
        };
        let ph = field("ph").expect("event without ph");
        if let Some(pid) = field("pid") {
            pids.insert(pid);
        }
        if ph == "M" {
            continue;
        }
        let name = field("name").expect("event without name");
        let tid = field("tid").expect("event without tid");
        let ts: f64 = field("ts").expect("event without ts").parse().unwrap();
        if let Some(prev) = last_ts {
            assert!(ts >= prev, "events out of timestamp order: {prev} > {ts}");
        }
        last_ts = Some(ts);
        match ph.as_str() {
            "B" => {
                begins += 1;
                stacks.entry(tid).or_default().push(name);
            }
            "E" => {
                ends += 1;
                let open = stacks
                    .get_mut(&tid)
                    .and_then(|s| s.pop())
                    .unwrap_or_else(|| panic!("E without open B on tid {tid}"));
                assert_eq!(open, name, "mismatched B/E pair on tid {tid}");
            }
            "I" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(begins > 0, "no events exported");
    assert_eq!(begins, ends, "unbalanced B/E events");
    assert!(
        stacks.values().all(|s| s.is_empty()),
        "unclosed scopes at export: {stacks:?}"
    );
    assert_eq!(pids.len(), 1, "inconsistent pids: {pids:?}");
    for name in ["outer", "inner", "sibling", "worker.scope"] {
        assert!(json.contains(name), "scope {name:?} missing from export");
    }
}
