//! The common interface every sequential recommender in this workspace
//! implements (ISRec and all ten baselines).

use ist_data::{LeaveOneOut, SequentialDataset};

use crate::config::TrainConfig;

/// Per-epoch training diagnostics.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
}

impl TrainReport {
    /// True when the loss decreased from the first to the last epoch —
    /// used as a cheap learning-signal assertion in tests.
    pub fn improved(&self) -> bool {
        match (self.epoch_losses.first(), self.epoch_losses.last()) {
            (Some(a), Some(b)) => b < a,
            _ => false,
        }
    }
}

/// A next-item recommender trained on user interaction sequences.
pub trait SequentialRecommender {
    /// Display name (used in the result tables).
    fn name(&self) -> String;

    /// Trains on the split's training sequences.
    fn fit(
        &mut self,
        dataset: &SequentialDataset,
        split: &LeaveOneOut,
        train: &TrainConfig,
    ) -> TrainReport;

    /// Scores `candidates` as the next item after each `history`
    /// (higher = better). `scores[i][j]` is the score of
    /// `candidates[i][j]` given `histories[i]`.
    ///
    /// `users[i]` is the dataset user index behind `histories[i]`;
    /// sequence models may ignore it, while MF-family baselines (BPR-MF,
    /// NCF, FPMC, DGCF, Caser) use their learned user embedding.
    fn score_batch(
        &self,
        users: &[usize],
        histories: &[&[usize]],
        candidates: &[&[usize]],
    ) -> Vec<Vec<f32>>;

    /// Convenience single-history scorer for user 0-style sequence models.
    fn score(&self, history: &[usize], candidates: &[usize]) -> Vec<f32> {
        self.score_batch(&[0], &[history], &[candidates])
            .pop()
            .expect("one row")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_improvement() {
        let r = TrainReport {
            epoch_losses: vec![2.0, 1.5, 1.0],
        };
        assert!(r.improved());
        let flat = TrainReport {
            epoch_losses: vec![1.0, 1.2],
        };
        assert!(!flat.improved());
        assert!(!TrainReport::default().improved());
    }
}
