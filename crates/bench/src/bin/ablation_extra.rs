//! Extra ablations of this implementation's documented design choices
//! (DESIGN.md §5): residual decoder, relaxed vs straight-through gates,
//! concept-tied output, and GCN depth — all on the Beauty-like world.

use isrec_core::{Isrec, IsrecConfig, SequentialRecommender, TrainConfig};
use ist_bench::worlds::{max_len_for, world, Scale};
use ist_data::{LeaveOneOut, WorldConfig};
use ist_eval::report::render_sweep;
use ist_eval::{EvalProtocol, ProtocolConfig};

fn main() {
    let scale = Scale::from_args();
    let ds = world(WorldConfig::beauty_like(), scale);
    let max_len = max_len_for(&ds.name);
    let split = LeaveOneOut::split(&ds.sequences);
    let proto = EvalProtocol::build(
        &ds,
        &split,
        &ProtocolConfig {
            max_users: scale.max_eval_users(),
            ..Default::default()
        },
    );

    let base = IsrecConfig {
        max_len,
        ..Default::default()
    };
    let variants: Vec<(&str, IsrecConfig)> = vec![
        ("full (defaults)", base.clone()),
        (
            "hard straight-through gates",
            IsrecConfig {
                soft_intents: false,
                ..base.clone()
            },
        ),
        (
            "no residual decoder",
            IsrecConfig {
                residual_decoder: false,
                ..base.clone()
            },
        ),
        (
            "no concept-tied output",
            IsrecConfig {
                tie_concept_output: false,
                ..base.clone()
            },
        ),
        (
            "1 GCN layer",
            IsrecConfig {
                gcn_layers: 1,
                ..base.clone()
            },
        ),
        (
            "3 GCN layers",
            IsrecConfig {
                gcn_layers: 3,
                ..base.clone()
            },
        ),
        (
            "shared concept hidden (16)",
            IsrecConfig {
                concept_hidden: Some(16),
                ..base.clone()
            },
        ),
        (
            "learned adjacency (§3.5 ext.)",
            IsrecConfig {
                adjacency: isrec_core::AdjacencyMode::Learned,
                ..base.clone()
            },
        ),
        (
            "mixed adjacency (§3.5 ext.)",
            IsrecConfig {
                adjacency: isrec_core::AdjacencyMode::Mixed,
                ..base
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, cfg) in variants {
        let mut model = Isrec::new(&ds, cfg, 7);
        let train = TrainConfig {
            epochs: scale.epochs(),
            lr: 5e-3,
            batch_size: 64,
            ..Default::default()
        };
        model.fit(&ds, &split, &train);
        rows.push((name.to_string(), proto.evaluate(&model)));
        eprintln!("{name} done");
    }
    println!(
        "{}",
        render_sweep(
            "Extra ablations — implementation design choices (beauty-like)",
            "variant",
            &rows
        )
    );
}
