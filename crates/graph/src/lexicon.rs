//! A miniature common-sense lexicon: human-readable concept names per
//! domain, standing in for ConceptNet's vocabulary in explanations and
//! showcases (Fig. 2 of the paper prints names like *wrinkle*, *scalp*,
//! *military*, *crime*).

/// The four application domains of the paper's datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Amazon "Beauty"-like products.
    Beauty,
    /// Steam-like video games.
    Games,
    /// Epinions-like general consumer reviews.
    Consumer,
    /// MovieLens-like movies.
    Movies,
}

impl Domain {
    /// Seed vocabulary of the domain.
    pub fn base_words(self) -> &'static [&'static str] {
        match self {
            Domain::Beauty => &[
                "moisturizer",
                "wrinkle",
                "scalp",
                "skin",
                "face",
                "brightening",
                "serum",
                "cleanser",
                "shampoo",
                "conditioner",
                "fragrance",
                "lipstick",
                "mascara",
                "foundation",
                "sunscreen",
                "exfoliant",
                "toner",
                "lotion",
                "oil",
                "mousse",
                "fiber",
                "defense",
                "hydration",
                "collagen",
                "vitamin",
                "lash",
                "brow",
                "nail",
                "polish",
                "balm",
                "mask",
                "acne",
                "pore",
                "glow",
                "matte",
                "blush",
                "primer",
                "concealer",
                "hairspray",
                "curl",
            ],
            Domain::Games => &[
                "war",
                "crime",
                "fight",
                "military",
                "tank",
                "destruction",
                "violent",
                "strategy",
                "puzzle",
                "racing",
                "shooter",
                "stealth",
                "survival",
                "horror",
                "fantasy",
                "dragon",
                "magic",
                "quest",
                "dungeon",
                "loot",
                "craft",
                "build",
                "simulation",
                "farming",
                "space",
                "alien",
                "zombie",
                "sword",
                "sniper",
                "squad",
                "arena",
                "tactics",
                "empire",
                "battle",
                "pixel",
                "roguelike",
                "platformer",
                "sandbox",
                "multiplayer",
                "campaign",
            ],
            Domain::Consumer => &[
                "camera",
                "laptop",
                "battery",
                "warranty",
                "shipping",
                "kitchen",
                "blender",
                "vacuum",
                "stroller",
                "toy",
                "book",
                "novel",
                "garden",
                "tool",
                "drill",
                "tire",
                "engine",
                "luggage",
                "backpack",
                "tent",
                "hiking",
                "fitness",
                "treadmill",
                "headphone",
                "speaker",
                "printer",
                "monitor",
                "keyboard",
                "router",
                "phone",
                "tablet",
                "watch",
                "jacket",
                "shoes",
                "comfortable",
                "durable",
                "bargain",
                "quality",
                "service",
                "return",
            ],
            Domain::Movies => &[
                "action",
                "comedy",
                "drama",
                "thriller",
                "romance",
                "horror",
                "sci-fi",
                "western",
                "noir",
                "animation",
                "documentary",
                "musical",
                "war",
                "crime",
                "mystery",
                "adventure",
                "family",
                "fantasy",
                "biopic",
                "heist",
                "courtroom",
                "detective",
                "space",
                "dystopia",
                "superhero",
                "vampire",
                "road-trip",
                "coming-of-age",
                "satire",
                "slapstick",
                "suspense",
                "epic",
                "indie",
                "classic",
                "remake",
                "sequel",
                "ensemble",
                "director",
                "oscar",
                "cult",
            ],
        }
    }

    /// `k` concept names: the base vocabulary, extended with derived
    /// compounds (`word-2`, `word-3`, …) when `k` exceeds it.
    pub fn concept_names(self, k: usize) -> Vec<String> {
        let base = self.base_words();
        let mut names = Vec::with_capacity(k);
        let mut round = 1usize;
        while names.len() < k {
            for w in base {
                if names.len() == k {
                    break;
                }
                if round == 1 {
                    names.push((*w).to_string());
                } else {
                    names.push(format!("{w}-{round}"));
                }
            }
            round += 1;
        }
        names
    }

    /// Distractor (non-concept) words used by the synthetic review texts —
    /// the "noise" the keyword extractor must ignore.
    pub fn noise_words() -> &'static [&'static str] {
        &[
            "really",
            "very",
            "bought",
            "arrived",
            "yesterday",
            "definitely",
            "maybe",
            "thing",
            "stuff",
            "okay",
            "basically",
            "actually",
            "honestly",
            "pretty",
            "highly",
            "totally",
            "probably",
            "awesome",
            "terrible",
            "great",
            "bad",
            "love",
            "hate",
            "recommend",
            "price",
            "cheap",
            "expensive",
            "fast",
            "slow",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_vocabularies_are_distinct_and_nonempty() {
        for d in [
            Domain::Beauty,
            Domain::Games,
            Domain::Consumer,
            Domain::Movies,
        ] {
            assert!(d.base_words().len() >= 40);
            // no duplicates
            let mut set = std::collections::HashSet::new();
            for w in d.base_words() {
                assert!(set.insert(*w), "duplicate word {w} in {d:?}");
            }
        }
        assert!(Domain::Beauty.base_words().contains(&"wrinkle")); // Fig. 2 name
        assert!(Domain::Games.base_words().contains(&"military")); // Fig. 2 name
    }

    #[test]
    fn concept_names_extend_past_base() {
        let names = Domain::Beauty.concept_names(100);
        assert_eq!(names.len(), 100);
        assert_eq!(names[0], "moisturizer");
        assert!(
            names[99].contains('-'),
            "derived name expected, got {}",
            names[99]
        );
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), 100);
    }

    #[test]
    fn noise_disjoint_from_concepts() {
        let concepts: std::collections::HashSet<_> =
            Domain::Beauty.base_words().iter().copied().collect();
        for w in Domain::noise_words() {
            assert!(!concepts.contains(w), "noise word {w} collides");
        }
    }
}
