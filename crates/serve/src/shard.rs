//! Column-sharded catalog scoring.
//!
//! The single-GEMM scoring path hits a cliff at large catalogs: one
//! `[m,d]·[d,|I|]` matmul materialises the full `m×|I|` score matrix
//! (cold by the time top-K rescans it) and, at serving batch sizes
//! (`m` is often 1), never crosses `matmul`'s row-parallel gate — the
//! whole catalog is scored serially whatever the pool size. Sharding
//! splits the transposed item table into contiguous *column blocks*
//! ([`ShardPlan`]), scores each block with
//! [`ist_tensor::matmul::gemm_cols`] (a view — no copy of the table),
//! ranks the block with a bounded heap while its scores are still
//! cache-hot, and merges the per-shard lists with the same comparator
//! the heap uses ([`crate::topk::merge_top_k`]).
//!
//! ## Determinism
//!
//! Results are bitwise identical for every shard count:
//!
//! 1. `gemm_cols` accumulates each output element in the same order as
//!    the full-width GEMM (KC panels ascending, depth ascending), and its
//!    zero-row skip depends only on the representation matrix — so shard
//!    scores are bit-equal to the corresponding slice of the unsharded
//!    score row.
//! 2. Per-shard top-K and the k-way merge share one total rank order
//!    (score descending, item id ascending), and shards cover disjoint
//!    id ranges — so the merged list is exactly what a single global
//!    heap would keep, ties included.
//!
//! The CI serve gate enforces this end to end: `scores_crc` must match
//! across `IST_SERVE_SHARDS=1/2/4`.

use std::time::Instant;

use ist_tensor::matmul::gemm_cols;
use ist_tensor::{pool, Tensor};

use crate::engine::Recommendation;
use crate::topk::{merge_top_k, top_k_range};

/// Per-shard GEMM+rank work, aggregated (units = multiply-adds ×2).
static SHARD_TIMER: ist_obs::Timer = ist_obs::Timer::with_unit("serve.shard", "flop");
/// Per-shard wall latency distribution (p50/p95/p99 in the serve report).
static SHARD_US: ist_obs::Histogram = ist_obs::Histogram::with_unit("serve.shard_us", "us");

/// Resolves the configured shard count: `0` (auto) means one shard per
/// pool worker, so sharding defaults to whatever parallelism the host
/// actually has.
pub fn resolve_shards(configured: usize) -> usize {
    if configured > 0 {
        configured
    } else {
        pool::global().threads()
    }
}

/// A partition of the catalog's `num_items` columns into contiguous
/// blocks of near-equal width (widths differ by at most one, wider
/// blocks first). Built once per scorer incarnation and rebuilt on
/// reload; the blocks are *bounds only* — the item table itself is
/// never copied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    bounds: Vec<(usize, usize)>,
    num_items: usize,
}

impl ShardPlan {
    /// Plans `shards` blocks over `num_items` columns. The count is
    /// clamped to `[1, num_items]` (an empty catalog gets one empty
    /// shard), so over-asking — `IST_SERVE_SHARDS` larger than the
    /// catalog — degrades to one item per shard rather than producing
    /// empty blocks.
    pub fn new(num_items: usize, shards: usize) -> ShardPlan {
        let s = shards.clamp(1, num_items.max(1));
        let width = num_items / s;
        let rem = num_items % s;
        let mut bounds = Vec::with_capacity(s);
        let mut at = 0usize;
        for si in 0..s {
            let w = width + usize::from(si < rem);
            bounds.push((at, at + w));
            at += w;
        }
        debug_assert_eq!(at, num_items);
        ShardPlan { bounds, num_items }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.bounds.len()
    }

    /// Catalog width this plan was built for.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// `[start, end)` column bounds of every shard.
    pub fn bounds(&self) -> &[(usize, usize)] {
        &self.bounds
    }
}

/// One request row's ranked result: its top-K list, or the message of
/// the first (lowest item range) shard that hit a non-finite score.
pub type RowRanking = Result<Vec<Recommendation>, String>;

/// Wall-clock split of one [`score_sharded_timed`] call, feeding the
/// per-request stage breakdown (`score` = shard fan-out GEMM + per-shard
/// top-K, `merge` = the k-way merge of the per-shard lists).
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardTiming {
    /// Shard fan-out: GEMM + per-shard bounded-heap top-K.
    pub score: std::time::Duration,
    /// K-way merge of the per-shard lists.
    pub merge: std::time::Duration,
}

/// Scores every representation row in `reprs` (`[m, d]`) against the
/// transposed item table `table_t` (`[d, num_items]`) shard by shard and
/// returns each row's top-`ks[row]` items, best first.
///
/// Each shard is one `gemm_cols` GEMM into an `m×width` block buffer
/// followed immediately by per-row bounded-heap top-K over that buffer —
/// the block is ranked while still cache-resident, instead of
/// materialising the full `m×num_items` score matrix and rescanning it
/// cold. With more than one shard and more than one pool worker, shards
/// fan out on the shared `ist_tensor` pool. Per-row errors (non-finite
/// scores) fail only that row; the lowest-numbered failing shard's
/// message wins, deterministically.
pub fn score_sharded(
    reprs: &Tensor,
    table_t: &Tensor,
    ks: &[usize],
    plan: &ShardPlan,
) -> Vec<RowRanking> {
    score_sharded_timed(reprs, table_t, ks, plan).0
}

/// [`score_sharded`] plus a [`ShardTiming`] wall-clock split of the
/// fan-out and merge phases, for the request-level stage breakdown. The
/// timing is measurement only — rankings are bitwise identical to
/// [`score_sharded`]'s.
pub fn score_sharded_timed(
    reprs: &Tensor,
    table_t: &Tensor,
    ks: &[usize],
    plan: &ShardPlan,
) -> (Vec<RowRanking>, ShardTiming) {
    let m = reprs.shape()[0];
    let d = reprs.shape()[1];
    let num_items = table_t.shape()[1];
    debug_assert_eq!(table_t.shape()[0], d);
    debug_assert_eq!(plan.num_items(), num_items);
    debug_assert_eq!(ks.len(), m);

    let shard_one = |&(b0, b1): &(usize, usize)| -> Vec<RowRanking> {
        let width = b1 - b0;
        let started = Instant::now();
        let _timing = SHARD_TIMER.start_with(2 * (m * d * width) as u64);
        let mut block = vec![0.0f32; m * width];
        gemm_cols(
            reprs.data(),
            table_t.data(),
            &mut block,
            m,
            d,
            num_items,
            b0,
            width,
        );
        let ranked = (0..m)
            .map(|r| top_k_range(&block[r * width..(r + 1) * width], b0, ks[r]))
            .collect();
        SHARD_US.record(started.elapsed().as_micros() as u64);
        ranked
    };

    let pool = pool::global();
    let fanout_started = Instant::now();
    let per_shard: Vec<Vec<RowRanking>> = if plan.num_shards() > 1 && pool.threads() > 1 {
        // Slot-per-shard fan-out on the shared pool (help-while-wait, so
        // this nests safely under any caller already on the pool).
        let mut slots: Vec<Option<Vec<RowRanking>>> =
            (0..plan.num_shards()).map(|_| None).collect();
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
            .iter_mut()
            .zip(plan.bounds())
            .map(|(slot, bounds)| {
                let shard_one = &shard_one;
                Box::new(move || *slot = Some(shard_one(bounds))) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(tasks);
        slots
            .into_iter()
            .map(|s| s.expect("pool.run completed every shard task"))
            .collect()
    } else {
        plan.bounds().iter().map(shard_one).collect()
    };
    let score_dur = fanout_started.elapsed();

    let merge_started = Instant::now();
    let merged = (0..m)
        .map(|r| {
            // First failing shard (lowest item range) wins, so the error a
            // caller sees is independent of execution order.
            let mut lists = Vec::with_capacity(per_shard.len());
            for shard_rows in &per_shard {
                match &shard_rows[r] {
                    Ok(list) => lists.push(list.clone()),
                    Err(e) => return Err(e.clone()),
                }
            }
            Ok(merge_top_k(&lists, ks[r]))
        })
        .collect();
    (
        merged,
        ShardTiming {
            score: score_dur,
            merge: merge_started.elapsed(),
        },
    )
}

/// Snapshot of the per-shard latency histogram for the serve report:
/// `(samples, p50_us, p95_us, p99_us)`. All zeros unless `IST_METRICS`
/// was enabled for the run.
pub fn shard_latency() -> (u64, f64, f64, f64) {
    (
        SHARD_US.count(),
        SHARD_US.quantile(0.50),
        SHARD_US.quantile(0.95),
        SHARD_US.quantile(0.99),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ist_tensor::rng::{uniform, SeedRng, SeedRngExt as _};

    #[test]
    fn plan_covers_catalog_contiguously() {
        for (n, s) in [(10usize, 3usize), (7, 7), (7, 20), (1, 4), (100, 1)] {
            let plan = ShardPlan::new(n, s);
            assert!(plan.num_shards() <= n.max(1));
            let mut at = 0usize;
            for &(b0, b1) in plan.bounds() {
                assert_eq!(b0, at);
                assert!(b1 > b0, "empty shard in {plan:?}");
                at = b1;
            }
            assert_eq!(at, n);
            // Near-equal widths: max and min differ by at most one.
            let widths: Vec<usize> = plan.bounds().iter().map(|&(a, b)| b - a).collect();
            let (min, max) = (widths.iter().min().unwrap(), widths.iter().max().unwrap());
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn plan_handles_empty_catalog() {
        let plan = ShardPlan::new(0, 4);
        assert_eq!(plan.num_shards(), 1);
        assert_eq!(plan.bounds(), &[(0, 0)]);
    }

    #[test]
    fn sharded_scoring_matches_unsharded_bitwise() {
        let mut rng = SeedRng::seed(23);
        let (m, d, n) = (3usize, 16usize, 157usize);
        let reprs = uniform(&[m, d], -1.0, 1.0, &mut rng);
        let table = uniform(&[d, n], -1.0, 1.0, &mut rng);
        let ks = [5usize, 1, 200]; // k > catalog on the last row
        let baseline = score_sharded(&reprs, &table, &ks, &ShardPlan::new(n, 1));
        for shards in [2usize, 3, 8, n, n + 50] {
            let plan = ShardPlan::new(n, shards);
            let got = score_sharded(&reprs, &table, &ks, &plan);
            for (r, (g, b)) in got.iter().zip(&baseline).enumerate() {
                let (g, b) = (g.as_ref().unwrap(), b.as_ref().unwrap());
                assert_eq!(g.len(), b.len(), "shards={shards} row={r}");
                for (x, y) in g.iter().zip(b) {
                    assert_eq!(x.item, y.item, "shards={shards} row={r}");
                    assert_eq!(
                        x.score.to_bits(),
                        y.score.to_bits(),
                        "shards={shards} row={r} item={}",
                        x.item
                    );
                }
            }
        }
    }

    #[test]
    fn non_finite_score_fails_only_its_row_deterministically() {
        // Row 0 reads the poisoned table row and must fail with the item
        // named; row 1's repr is zero there (the kernel skips zero
        // a-elements), so it keeps serving — and both outcomes must be
        // identical for every shard count.
        let reprs = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let mut table = vec![0.5f32; 2 * 8];
        table[5] = f32::NAN; // table_t (d=0, item=5)
        let table = Tensor::from_vec(table, &[2, 8]);
        for shards in [1usize, 4, 8] {
            let plan = ShardPlan::new(8, shards);
            let got = score_sharded(&reprs, &table, &[3, 3], &plan);
            let err = got[0].as_ref().unwrap_err();
            assert!(err.contains("item 5"), "shards={shards}: {err}");
            let ok = got[1].as_ref().unwrap();
            assert_eq!(ok.len(), 3, "shards={shards}");
            assert!(ok.iter().all(|r| r.score.is_finite()));
        }
    }
}
