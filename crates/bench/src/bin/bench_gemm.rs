//! GEMM throughput report: serial reference kernel vs the cache-blocked
//! kernel, across pool sizes. Writes `BENCH_gemm.json` (GFLOP/s per
//! configuration, plus the warmup/iteration counts each number was measured
//! with) for CI artifacts and `bench_diff`, and prints a table to stdout.
//!
//! Usage: `cargo run --release -p ist-bench --bin bench_gemm [out.json]`

use ist_bench::gemm;

fn main() {
    // Aggregate telemetry (GEMM call counts, GFLOP/s, pool utilisation)
    // rides along in the JSON artifact; Summary mode costs one branch per
    // timed call and emits nothing until the final flush.
    if !ist_obs::enabled() {
        ist_obs::set_mode(ist_obs::Mode::Summary);
    }
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_gemm.json".to_string());

    let rows = gemm::run_suite();

    println!(
        "{:<14} {:>5} {:>8} {:>8} {:>10} {:>12} {:>7}",
        "kernel", "size", "threads", "dispatch", "GFLOP/s", "ms/iter", "iters"
    );
    for r in &rows {
        println!(
            "{:<14} {:>5} {:>8} {:>8} {:>10.3} {:>12.3} {:>7}",
            r.kernel, r.size, r.threads, r.dispatch, r.gflops, r.ms_per_iter, r.iters
        );
    }

    // Hand-rolled JSON: the offline workspace carries no serde/format crate.
    let mut json = String::from("{\n  \"benchmark\": \"gemm\",\n  \"cpu\": ");
    json.push_str(&gemm::cpu_to_json());
    json.push_str(",\n  \"results\": [\n");
    json.push_str(&gemm::rows_to_json(&rows));
    json.push_str("  ],\n  \"obs\": [\n");
    let snapshot = ist_obs::snapshot_json();
    for (i, line) in snapshot.iter().enumerate() {
        json.push_str("    ");
        json.push_str(line);
        json.push_str(if i + 1 < snapshot.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_gemm.json");
    println!("\nwrote {out_path}");

    // Regression guards for CI logs: the blocked kernel must not lose to
    // the serial reference, and the best SIMD level must show its speedup
    // over the scalar dispatch (the perf acceptance gate reads this line).
    let best = ist_tensor::simd::detected().name();
    let find = |kernel: &str, size: usize, dispatch: &str| {
        rows.iter()
            .find(|r| r.kernel == kernel && r.size == size && r.dispatch == dispatch)
            .map(|r| r.gflops)
            .unwrap_or(0.0)
    };
    let serial_512 = find("serial_ikj", 512, "scalar");
    let blocked_512 = find("blocked", 512, best);
    println!(
        "512x512x512: serial {serial_512:.3} GFLOP/s, blocked@{best} {blocked_512:.3} \
         GFLOP/s ({:.2}x)",
        blocked_512 / serial_512.max(1e-9)
    );
    for size in [256usize, 512] {
        let scalar = find("blocked", size, "scalar");
        let simd = find("blocked", size, best);
        println!(
            "blocked {size}^3: scalar {scalar:.3} -> {best} {simd:.3} GFLOP/s ({:.2}x)",
            simd / scalar.max(1e-9)
        );
    }
}
