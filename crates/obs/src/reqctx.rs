//! Per-request context: trace-ID propagation, a per-stage latency
//! breakdown, a structured access log, and a slowest-N exemplar reservoir.
//!
//! A [`ReqCtx`] is allocated once per request at the serving front door
//! (when [`active`] — any of access log, metrics, or tracing on) and rides
//! the request through admission queue → batcher → scorer → shard fan-out →
//! merge → reply. Each pipeline stage records its wall time into a slot of
//! the context ([`ReqCtx::record`]); when the request finishes, exactly one
//! JSON line describing it is appended to the access log
//! (`IST_SERVE_ACCESS_LOG=<path>` or [`set_access_log_path`]) and the
//! request is offered to a bounded reservoir keeping the slowest
//! [`EXEMPLAR_CAP`] requests seen, whose full breakdowns land in the chrome
//! trace (as `"X"` complete events) and the serve report.
//!
//! ## Cost and invisibility
//!
//! When nothing is enabled, the only per-request cost is the [`active`]
//! check — three relaxed atomic loads, no allocation, no clock read beyond
//! what the engine already does. Nothing here touches scores: stage
//! recording is measurement-only, and the access line is emitted by the
//! *caller* after its response is already decided, so enabling any of it
//! cannot perturb `scores_crc` (the CI serve stage enforces this bitwise).
//!
//! ## Stage accounting
//!
//! The seven stages are disjoint sub-intervals of the request's lifetime:
//! `queue` (admission → batcher pop), `batch` (pop → batch dispatch),
//! `cache`/`encode`/`score`/`merge` (the scorer's pipeline; cache and
//! encode are batch-level intervals shared by every request in the batch),
//! and `reply` (response slot filled → caller woken). [`finish`] snapshots
//! the stage slots *before* reading the end-of-request clock, so the sum
//! of the reported stage micros can never exceed `total_us` — a property
//! the CI access-log validator asserts per line.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::{json_string, lock_tolerant};

/// Pipeline stages of one request, in lifecycle order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Admission queue wait: enqueue → batcher pop.
    Queue,
    /// Batch assembly: pop → the batch dispatching to the scorer.
    Batch,
    /// Representation-cache lookup (batch-level interval).
    Cache,
    /// Encoder forward over the batch's cache misses (batch-level).
    Encode,
    /// Sharded catalog GEMM + per-shard top-K (batch-level).
    Score,
    /// K-way merge of per-shard rankings (batch-level).
    Merge,
    /// Response slot filled → the waiting caller woke up.
    Reply,
}

/// Number of [`Stage`] variants.
pub const NUM_STAGES: usize = 7;

/// Stage key names, in [`Stage`] order, as they appear in access-log lines
/// and exemplar records (`"<name>_us"`).
pub const STAGE_NAMES: [&str; NUM_STAGES] = [
    "queue", "batch", "cache", "encode", "score", "merge", "reply",
];

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// The per-request observability context. Shared `Arc` between the caller
/// and the queued request; all fields are written with relaxed atomics —
/// the response slot's mutex already orders scorer writes before the
/// caller's [`finish`] snapshot.
pub struct ReqCtx {
    id: u64,
    start: Instant,
    /// Trace-epoch nanoseconds at request start (for exemplar placement on
    /// the chrome-trace timeline).
    start_ns: u64,
    history_len: u64,
    k: u64,
    stage_ns: [AtomicU64; NUM_STAGES],
    /// Nanoseconds from `start` when the response slot was filled; 0 until
    /// then. The reply stage is derived as `end − filled`.
    filled_ns: AtomicU64,
    cache_hit: AtomicBool,
    batch: AtomicU64,
    shards: AtomicU64,
}

/// True when request contexts should be allocated: any of the access log,
/// the metrics registry (including a live [`crate::export`] endpoint, which
/// forces collection), or tracing is on. Three relaxed loads.
#[inline]
pub fn active() -> bool {
    access_log_enabled() || crate::enabled() || crate::trace_enabled()
}

impl ReqCtx {
    /// Allocates a context and assigns the next monotonic request id, or
    /// `None` (no allocation, no id burned) when observability is off.
    pub fn start(history_len: usize, k: usize) -> Option<Arc<ReqCtx>> {
        if !active() {
            return None;
        }
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Some(Arc::new(ReqCtx {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            start: Instant::now(),
            start_ns: crate::trace::now_ns(),
            history_len: history_len as u64,
            k: k as u64,
            stage_ns: [ZERO; NUM_STAGES],
            filled_ns: AtomicU64::new(0),
            cache_hit: AtomicBool::new(false),
            batch: AtomicU64::new(0),
            shards: AtomicU64::new(0),
        }))
    }

    /// The request's monotonic trace id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Adds `dur` to a stage's accounted time.
    pub fn record(&self, stage: Stage, dur: Duration) {
        self.stage_ns[stage as usize].fetch_add(dur.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Marks the response slot as filled now; the reply stage measures from
    /// here to the caller's wake-up.
    pub fn mark_filled(&self) {
        self.filled_ns
            .store(self.start.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records how the batch the request rode in looked: whether its
    /// representation was a cache hit, the coalesced batch size, and the
    /// shard fan-out it was scored under.
    pub fn set_batch_info(&self, cache_hit: bool, batch: usize, shards: usize) {
        self.cache_hit.store(cache_hit, Ordering::Relaxed);
        self.batch.store(batch as u64, Ordering::Relaxed);
        self.shards.store(shards as u64, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Access log sink
// ---------------------------------------------------------------------------

const ACCESS_UNINIT: u8 = 0;
const ACCESS_OFF: u8 = 1;
const ACCESS_ON: u8 = 2;

static ACCESS_STATE: AtomicU8 = AtomicU8::new(ACCESS_UNINIT);

fn access_sink() -> &'static Mutex<Option<Box<dyn Write + Send>>> {
    static SINK: OnceLock<Mutex<Option<Box<dyn Write + Send>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// True when finished requests append a line to the access log. One relaxed
/// load in steady state; first call resolves `IST_SERVE_ACCESS_LOG`.
#[inline]
pub fn access_log_enabled() -> bool {
    match ACCESS_STATE.load(Ordering::Relaxed) {
        ACCESS_ON => true,
        ACCESS_OFF => false,
        _ => init_access_from_env(),
    }
}

#[cold]
fn init_access_from_env() -> bool {
    let on = match std::env::var("IST_SERVE_ACCESS_LOG") {
        Ok(path) if !path.trim().is_empty() => match set_access_log_path(path.trim()) {
            Ok(()) => true,
            Err(e) => {
                eprintln!("warning: IST_SERVE_ACCESS_LOG: {e}; access log disabled");
                false
            }
        },
        _ => false,
    };
    if !on {
        ACCESS_STATE.store(ACCESS_OFF, Ordering::Relaxed);
    }
    on
}

/// Opens (truncating) `path` as the access log and enables per-request
/// lines (the CLI's `--access-log`).
pub fn set_access_log_path(path: &str) -> Result<(), String> {
    let f = std::fs::File::create(path).map_err(|e| format!("create {path:?}: {e}"))?;
    *lock_tolerant(access_sink()) = Some(Box::new(f));
    ACCESS_STATE.store(ACCESS_ON, Ordering::Relaxed);
    Ok(())
}

/// Redirects access-log lines to an arbitrary writer (tests).
pub fn set_access_log_writer(writer: Box<dyn Write + Send>) {
    *lock_tolerant(access_sink()) = Some(writer);
    ACCESS_STATE.store(ACCESS_ON, Ordering::Relaxed);
}

/// Disables the access log and drops the sink (tests restoring global
/// state).
pub fn disable_access_log() {
    *lock_tolerant(access_sink()) = None;
    ACCESS_STATE.store(ACCESS_OFF, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Finish: access line + exemplar reservoir
// ---------------------------------------------------------------------------

/// How many slowest-request exemplars the reservoir keeps.
pub const EXEMPLAR_CAP: usize = 8;

/// One fully-attributed slow request, kept by the reservoir and flushed
/// into the chrome trace and the serve report.
#[derive(Clone, Debug)]
pub struct Exemplar {
    /// Trace id.
    pub id: u64,
    /// End-to-end latency, microseconds.
    pub total_us: u64,
    /// Trace-epoch start, nanoseconds (timeline placement).
    pub start_ns: u64,
    /// Outcome tag: `"ok"` or a typed `ServeError` kind.
    pub outcome: &'static str,
    /// True when the degraded-mode fallback produced the answer.
    pub degraded: bool,
    /// Request shape: history length and requested k.
    pub history_len: u64,
    /// Requested top-K.
    pub k: u64,
    /// Whether the representation was served from cache.
    pub cache_hit: bool,
    /// Coalesced batch size the request rode in.
    pub batch: u64,
    /// Shard fan-out it was scored under.
    pub shards: u64,
    /// Per-stage micros, [`STAGE_NAMES`] order.
    pub stage_us: [u64; NUM_STAGES],
}

fn reservoir() -> &'static Mutex<Vec<Exemplar>> {
    static RESERVOIR: OnceLock<Mutex<Vec<Exemplar>>> = OnceLock::new();
    RESERVOIR.get_or_init(|| Mutex::new(Vec::new()))
}

/// The current slowest-N exemplars, slowest first.
pub fn exemplars() -> Vec<Exemplar> {
    lock_tolerant(reservoir()).clone()
}

/// Clears the reservoir (tests; process-global like everything here).
pub fn reset_exemplars() {
    lock_tolerant(reservoir()).clear();
}

/// Closes out a request: derives the reply stage and total, appends one
/// access-log line (when enabled), and offers the request to the exemplar
/// reservoir. Call exactly once per request, caller-side, after the
/// response is decided — every outcome (ok or any typed error) takes this
/// path, so "one line per finished request" holds by construction.
pub fn finish(ctx: &ReqCtx, outcome: &'static str, degraded: bool) -> u64 {
    // Snapshot the stage slots and fill time *before* reading the end
    // clock: every snapshotted interval then ended before `end_ns`, which
    // bounds the reported stage sum by the reported total even if a
    // post-timeout scorer is still racing to record stages.
    let mut stage_us = [0u64; NUM_STAGES];
    for (us, slot) in stage_us.iter_mut().zip(&ctx.stage_ns) {
        *us = slot.load(Ordering::Relaxed) / 1_000;
    }
    let filled_ns = ctx.filled_ns.load(Ordering::Relaxed);
    let end_ns = ctx.start.elapsed().as_nanos() as u64;
    if filled_ns > 0 {
        stage_us[Stage::Reply as usize] = end_ns.saturating_sub(filled_ns) / 1_000;
    }
    let total_us = end_ns / 1_000;

    let cache_hit = ctx.cache_hit.load(Ordering::Relaxed);
    let batch = ctx.batch.load(Ordering::Relaxed);
    let shards = ctx.shards.load(Ordering::Relaxed);

    if access_log_enabled() {
        let mut line = format!(
            "{{\"req\":{},\"outcome\":{},\"degraded\":{degraded},\"hist\":{},\"k\":{},\
             \"cache_hit\":{cache_hit},\"batch\":{batch},\"shards\":{shards},\
             \"total_us\":{total_us}",
            ctx.id,
            json_string(outcome),
            ctx.history_len,
            ctx.k,
        );
        for (name, us) in STAGE_NAMES.iter().zip(&stage_us) {
            line.push_str(&format!(",\"{name}_us\":{us}"));
        }
        line.push('}');
        if let Some(w) = &mut *lock_tolerant(access_sink()) {
            // Log write failures must never take serving down.
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
    }

    offer_exemplar(Exemplar {
        id: ctx.id,
        total_us,
        start_ns: ctx.start_ns,
        outcome,
        degraded,
        history_len: ctx.history_len,
        k: ctx.k,
        cache_hit,
        batch,
        shards,
        stage_us,
    });
    total_us
}

fn offer_exemplar(e: Exemplar) {
    let mut res = lock_tolerant(reservoir());
    if res.len() >= EXEMPLAR_CAP {
        // Reservoir full: replace the fastest kept exemplar if this one is
        // slower (ids break ties so churn stays deterministic).
        let (fastest, _) = res
            .iter()
            .enumerate()
            .min_by_key(|(_, x)| (x.total_us, u64::MAX - x.id))
            .expect("non-empty reservoir");
        if res[fastest].total_us >= e.total_us {
            return;
        }
        res[fastest] = e;
    } else {
        res.push(e);
    }
    res.sort_by_key(|x| (u64::MAX - x.total_us, x.id));
}

/// Renders the reservoir as chrome-trace `"X"` (complete) events on a
/// dedicated track, for [`crate::trace::export_json`]. Empty when no
/// requests finished.
pub(crate) fn exemplar_trace_events() -> Vec<String> {
    let res = lock_tolerant(reservoir());
    if res.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(res.len() + 1);
    out.push(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"slow-request exemplars\"}}"
            .to_string(),
    );
    for e in res.iter() {
        let mut args = format!(
            "{{\"req\":{},\"outcome\":{},\"degraded\":{},\"hist\":{},\"k\":{},\
             \"cache_hit\":{},\"batch\":{},\"shards\":{}",
            e.id,
            json_string(e.outcome),
            e.degraded,
            e.history_len,
            e.k,
            e.cache_hit,
            e.batch,
            e.shards
        );
        for (name, us) in STAGE_NAMES.iter().zip(&e.stage_us) {
            args.push_str(&format!(",\"{name}_us\":{us}"));
        }
        args.push('}');
        out.push(format!(
            "{{\"name\":\"serve.exemplar\",\"cat\":\"exemplar\",\"ph\":\"X\",\"ts\":{:.3},\
             \"dur\":{},\"pid\":1,\"tid\":0,\"args\":{args}}}",
            e.start_ns as f64 / 1_000.0,
            e.total_us
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_start_allocates_nothing() {
        // Off is the default in unit tests; ensure the access env var is
        // not consulted repeatedly by forcing the resolved state.
        let _guard = crate::test_mode_lock();
        crate::set_mode(crate::Mode::Off);
        disable_access_log();
        crate::trace::set_enabled(false);
        assert!(ReqCtx::start(5, 10).is_none());
    }

    #[test]
    fn finish_emits_one_parseable_line_with_bounded_stage_sum() {
        let _guard = crate::test_mode_lock();
        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                lock_tolerant(&self.0).extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Buf::default();
        set_access_log_writer(Box::new(buf.clone()));
        reset_exemplars();

        let ctx = ReqCtx::start(6, 10).expect("access log on → ctx active");
        // Record *real* sub-intervals so the stage-sum ≤ total invariant is
        // meaningful, exactly as the engine does.
        let t0 = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        ctx.record(Stage::Queue, t0.elapsed());
        let t1 = Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        ctx.record(Stage::Score, t1.elapsed());
        ctx.set_batch_info(true, 4, 2);
        ctx.mark_filled();
        let total = finish(&ctx, "ok", false);

        let text = String::from_utf8(lock_tolerant(&buf.0).clone()).unwrap();
        let line = text.lines().next().expect("one access line");
        assert!(
            line.starts_with(&format!("{{\"req\":{}", ctx.id())),
            "{line}"
        );
        assert!(line.contains("\"outcome\":\"ok\""));
        assert!(line.contains("\"hist\":6"));
        assert!(line.contains("\"cache_hit\":true"));
        assert!(line.contains("\"batch\":4"));
        assert!(line.contains("\"shards\":2"));
        for name in STAGE_NAMES {
            assert!(line.contains(&format!("\"{name}_us\":")), "{line}");
        }
        // Recorded stage micros cannot exceed the request's total.
        let ex = exemplars();
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].total_us, total);
        assert!(ex[0].stage_us.iter().sum::<u64>() <= total);
        assert!(ex[0].stage_us[Stage::Queue as usize] >= 2_000);
        disable_access_log();
    }

    #[test]
    fn reservoir_keeps_the_slowest_n() {
        let _guard = crate::test_mode_lock();
        reset_exemplars();
        for i in 0..(EXEMPLAR_CAP as u64 + 20) {
            offer_exemplar(Exemplar {
                id: i,
                total_us: i * 10,
                start_ns: 0,
                outcome: "ok",
                degraded: false,
                history_len: 1,
                k: 1,
                cache_hit: false,
                batch: 1,
                shards: 1,
                stage_us: [0; NUM_STAGES],
            });
        }
        let ex = exemplars();
        assert_eq!(ex.len(), EXEMPLAR_CAP);
        // Slowest first, and only the slowest CAP survive.
        assert!(ex.windows(2).all(|w| w[0].total_us >= w[1].total_us));
        assert_eq!(ex[0].total_us, (EXEMPLAR_CAP as u64 + 19) * 10);
        assert_eq!(ex.last().unwrap().total_us, 200);
        reset_exemplars();
    }
}
