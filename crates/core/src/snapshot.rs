//! Compact binary snapshots of trained parameters.
//!
//! Format (little-endian): `u32` param count, then per parameter
//! `u16 name_len | name bytes | u8 rank | u32 dims… | f32 data…`.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use ist_autograd::Param;
use ist_tensor::Tensor;

/// Serialises parameters (name, shape, values) to bytes.
pub fn save(params: &[Param]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(params.len() as u32);
    for p in params {
        let name = p.name();
        let value = p.value();
        buf.put_u16_le(name.len() as u16);
        buf.put_slice(name.as_bytes());
        buf.put_u8(value.rank() as u8);
        for &d in value.shape() {
            buf.put_u32_le(d as u32);
        }
        for &v in value.data() {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Restores parameter values by name. Parameters present in `params` but
/// missing from the snapshot are left untouched; shape mismatches error.
pub fn load(params: &[Param], mut bytes: Bytes) -> Result<usize, String> {
    if bytes.remaining() < 4 {
        return Err("truncated snapshot header".into());
    }
    let count = bytes.get_u32_le() as usize;
    let by_name: std::collections::HashMap<String, &Param> =
        params.iter().map(|p| (p.name(), p)).collect();
    let mut restored = 0usize;
    for _ in 0..count {
        if bytes.remaining() < 2 {
            return Err("truncated name length".into());
        }
        let name_len = bytes.get_u16_le() as usize;
        if bytes.remaining() < name_len + 1 {
            return Err("truncated name".into());
        }
        let name = String::from_utf8(bytes.copy_to_bytes(name_len).to_vec())
            .map_err(|e| format!("bad name: {e}"))?;
        let rank = bytes.get_u8() as usize;
        if bytes.remaining() < rank * 4 {
            return Err("truncated shape".into());
        }
        let shape: Vec<usize> = (0..rank).map(|_| bytes.get_u32_le() as usize).collect();
        let len: usize = shape.iter().product();
        if bytes.remaining() < len * 4 {
            return Err(format!("truncated data for {name}"));
        }
        let data: Vec<f32> = (0..len).map(|_| bytes.get_f32_le()).collect();
        if let Some(p) = by_name.get(&name) {
            if p.shape() != shape {
                return Err(format!(
                    "shape mismatch for {name}: snapshot {:?} vs model {:?}",
                    shape,
                    p.shape()
                ));
            }
            p.set_value(Tensor::from_vec(data, &shape));
            restored += 1;
        }
    }
    Ok(restored)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_restores_values() {
        let a = Param::new("a", Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]));
        let b = Param::new("b", Tensor::from_vec(vec![4.0, 5.0], &[2, 1]));
        let snap = save(&[a.clone(), b.clone()]);

        let a2 = Param::new("a", Tensor::zeros(&[3]));
        let b2 = Param::new("b", Tensor::zeros(&[2, 1]));
        let restored = load(&[a2.clone(), b2.clone()], snap).unwrap();
        assert_eq!(restored, 2);
        assert_eq!(a2.value().data(), &[1.0, 2.0, 3.0]);
        assert_eq!(b2.value().data(), &[4.0, 5.0]);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let a = Param::new("a", Tensor::zeros(&[3]));
        let snap = save(&[a]);
        let wrong = Param::new("a", Tensor::zeros(&[4]));
        assert!(load(&[wrong], snap).unwrap_err().contains("shape mismatch"));
    }

    #[test]
    fn unknown_params_are_skipped() {
        let a = Param::new("a", Tensor::ones(&[2]));
        let snap = save(&[a]);
        let other = Param::new("b", Tensor::zeros(&[2]));
        let restored = load(std::slice::from_ref(&other), snap).unwrap();
        assert_eq!(restored, 0);
        assert_eq!(other.value().data(), &[0.0, 0.0]);
    }

    #[test]
    fn truncated_snapshot_errors() {
        let a = Param::new("a", Tensor::ones(&[8]));
        let snap = save(&[a]);
        let cut = snap.slice(0..snap.len() - 4);
        assert!(load(&[Param::new("a", Tensor::zeros(&[8]))], cut).is_err());
    }
}
