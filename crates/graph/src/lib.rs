//! # ist-graph
//!
//! Concept graphs for the ISRec reproduction: compact undirected graph
//! storage ([`ConceptGraph`]), the symmetric-normalised adjacency used by
//! the GCN transition (Eq. 10), synthetic generators that match the
//! small-world statistics of the paper's ConceptNet subgraphs (Table 4),
//! and a miniature domain lexicon for human-readable concept names.

#![forbid(unsafe_code)]

pub mod generators;
pub mod graph;
pub mod lexicon;
pub mod norm;

pub use graph::ConceptGraph;
pub use norm::normalized_adjacency;
