//! Rolling-window SLO monitor: live p99 and error rate against configured
//! targets, surfaced as burn-rate gauges in `/metrics`, in `/healthz`, and
//! in the serve report.
//!
//! The targets come from `IST_SERVE_SLO_MS` (p99 latency target, default
//! 100ms) and `IST_SERVE_SLO_ERR_PCT` (error-rate target, default 1.0%),
//! evaluated over a ring of the last `IST_SERVE_SLO_WINDOW` (default 1024)
//! finished requests — every outcome counts, typed errors as failures.
//! A *burn rate* is observed/target: `latency_burn = p99 / slo`,
//! `error_burn = error_rate / target_rate`; above 1.0 the budget is
//! burning faster than the target allows and [`SloSnapshot::breached`]
//! flips. Burn rates export as milli-unit gauges
//! (`serve.slo_latency_burn_milli` = 1000 × burn) because the registry's
//! gauges are integers.
//!
//! Observation is gated on the same activation as the rest of the
//! request-level observability ([`ist_obs::reqctx::active`], checked once
//! at engine start): a fully dark process pays one relaxed load per
//! request and never touches the ring.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use ist_obs::env as obs_env;

/// Live p99 over the rolling window, microseconds.
static SLO_P99_US: ist_obs::Gauge = ist_obs::Gauge::new("serve.slo_p99_us");
/// 1000 × (rolling p99 / latency target).
static SLO_LATENCY_BURN: ist_obs::Gauge = ist_obs::Gauge::new("serve.slo_latency_burn_milli");
/// 1000 × (rolling error rate / error-rate target).
static SLO_ERROR_BURN: ist_obs::Gauge = ist_obs::Gauge::new("serve.slo_error_burn_milli");
/// 1 while either burn rate exceeds 1.0, else 0.
static SLO_BREACHED: ist_obs::Gauge = ist_obs::Gauge::new("serve.slo_breached");

/// SLO targets and window size; [`SloConfig::from_env`] reads the
/// `IST_SERVE_SLO_*` environment.
#[derive(Clone, Debug)]
pub struct SloConfig {
    /// p99 latency target, milliseconds (`IST_SERVE_SLO_MS`, default 100).
    pub slo_ms: u64,
    /// Error-rate target, percent (`IST_SERVE_SLO_ERR_PCT`, default 1.0).
    pub err_pct: f64,
    /// Rolling-window size in requests (`IST_SERVE_SLO_WINDOW`,
    /// default 1024, minimum 1).
    pub window: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            slo_ms: 100,
            err_pct: 1.0,
            window: 1024,
        }
    }
}

impl SloConfig {
    /// Reads `IST_SERVE_SLO_MS`, `IST_SERVE_SLO_ERR_PCT` and
    /// `IST_SERVE_SLO_WINDOW` (malformed values warn once and fall back).
    pub fn from_env() -> SloConfig {
        let d = SloConfig::default();
        SloConfig {
            slo_ms: obs_env::u64_or("IST_SERVE_SLO_MS", d.slo_ms).max(1),
            err_pct: obs_env::f64_or("IST_SERVE_SLO_ERR_PCT", d.err_pct).max(0.0),
            window: obs_env::positive_usize_or("IST_SERVE_SLO_WINDOW", d.window),
        }
    }
}

/// A point-in-time evaluation of the window against the targets.
#[derive(Clone, Debug, Default)]
pub struct SloSnapshot {
    /// True when the monitor was observing (any observability enabled at
    /// engine start); a default/dark snapshot reports all zeros.
    pub active: bool,
    /// Latency target, milliseconds.
    pub target_ms: u64,
    /// Error-rate target, percent.
    pub target_err_pct: f64,
    /// Requests currently in the window.
    pub window: usize,
    /// Requests observed over the engine's lifetime.
    pub total_observed: u64,
    /// p99 latency over the window, microseconds.
    pub p99_us: u64,
    /// Error rate over the window, percent.
    pub error_pct: f64,
    /// p99 / target (1.0 = exactly on target).
    pub latency_burn: f64,
    /// error rate / target rate.
    pub error_burn: f64,
    /// True when either burn rate exceeds 1.0.
    pub breached: bool,
}

impl SloSnapshot {
    /// Renders the snapshot as a JSON object (the serve report's `slo`
    /// block and `/healthz`'s `slo` field share this shape).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"active\":{},\"target_ms\":{},\"target_err_pct\":{:.3},\"window\":{},\
             \"total_observed\":{},\"p99_us\":{},\"error_pct\":{:.4},\
             \"latency_burn\":{:.4},\"error_burn\":{:.4},\"breached\":{}}}",
            self.active,
            self.target_ms,
            self.target_err_pct,
            self.window,
            self.total_observed,
            self.p99_us,
            self.error_pct,
            self.latency_burn,
            self.error_burn,
            self.breached
        )
    }
}

struct Ring {
    /// `(latency_us, ok)` per finished request, oldest first.
    samples: VecDeque<(u64, bool)>,
    total_observed: u64,
}

pub(crate) struct SloState {
    cfg: SloConfig,
    ring: Mutex<Ring>,
    active: AtomicBool,
}

/// The per-engine SLO monitor. Cheap to clone (shared state).
#[derive(Clone)]
pub struct SloMonitor {
    state: Arc<SloState>,
}

impl SloMonitor {
    /// Builds a monitor with explicit targets (inactive until
    /// [`SloMonitor::set_active`]).
    pub fn new(cfg: SloConfig) -> SloMonitor {
        SloMonitor {
            state: Arc::new(SloState {
                cfg,
                ring: Mutex::new(Ring {
                    samples: VecDeque::new(),
                    total_observed: 0,
                }),
                active: AtomicBool::new(false),
            }),
        }
    }

    /// Enables or disables observation. The engine sets this once at
    /// start from the global observability activation.
    pub fn set_active(&self, on: bool) {
        self.state.active.store(on, Ordering::Relaxed);
    }

    /// Feeds one finished request. One relaxed load when inactive.
    #[inline]
    pub fn observe(&self, latency_us: u64, ok: bool) {
        if !self.state.active.load(Ordering::Relaxed) {
            return;
        }
        let mut ring = self.state.ring.lock().unwrap_or_else(|p| p.into_inner());
        ring.total_observed += 1;
        if ring.samples.len() >= self.state.cfg.window {
            ring.samples.pop_front();
        }
        ring.samples.push_back((latency_us, ok));
    }

    /// Evaluates the current window against the targets.
    pub fn snapshot(&self) -> SloSnapshot {
        snapshot_state(&self.state)
    }
}

fn snapshot_state(state: &SloState) -> SloSnapshot {
    let cfg = &state.cfg;
    let ring = state.ring.lock().unwrap_or_else(|p| p.into_inner());
    let n = ring.samples.len();
    let mut snap = SloSnapshot {
        active: state.active.load(Ordering::Relaxed),
        target_ms: cfg.slo_ms,
        target_err_pct: cfg.err_pct,
        window: n,
        total_observed: ring.total_observed,
        ..SloSnapshot::default()
    };
    if n == 0 {
        return snap;
    }
    let mut lats: Vec<u64> = ring.samples.iter().map(|&(us, _)| us).collect();
    let errors = ring.samples.iter().filter(|&&(_, ok)| !ok).count();
    drop(ring);
    lats.sort_unstable();
    let rank = ((0.99 * n as f64).ceil() as usize).clamp(1, n);
    snap.p99_us = lats[rank - 1];
    snap.error_pct = errors as f64 / n as f64 * 100.0;
    snap.latency_burn = snap.p99_us as f64 / (cfg.slo_ms as f64 * 1_000.0);
    // A zero error target means any error at all is a breach.
    snap.error_burn = if cfg.err_pct > 0.0 {
        snap.error_pct / cfg.err_pct
    } else if errors > 0 {
        f64::INFINITY
    } else {
        0.0
    };
    snap.breached = snap.latency_burn > 1.0 || snap.error_burn > 1.0;
    snap
}

// ---------------------------------------------------------------------------
// Global wiring: the flush hook reads whichever engine installed last
// ---------------------------------------------------------------------------

fn current() -> &'static Mutex<Option<Arc<SloState>>> {
    static CURRENT: OnceLock<Mutex<Option<Arc<SloState>>>> = OnceLock::new();
    CURRENT.get_or_init(|| Mutex::new(None))
}

fn sync_gauges() {
    // Clone the Arc out and release the `current()` guard before taking
    // the ring lock, keeping the lock order trivial.
    let state = {
        let cur = current().lock().unwrap_or_else(|p| p.into_inner());
        cur.as_ref().map(Arc::clone)
    };
    let Some(state) = state else { return };
    let snap = snapshot_state(&state);
    SLO_P99_US.set(snap.p99_us);
    SLO_LATENCY_BURN.set((snap.latency_burn * 1_000.0) as u64);
    SLO_ERROR_BURN.set(if snap.error_burn.is_finite() {
        (snap.error_burn * 1_000.0) as u64
    } else {
        u64::MAX
    });
    SLO_BREACHED.set(u64::from(snap.breached));
}

/// Makes `monitor` the process-wide source for the SLO gauges and
/// registers the flush hook (idempotent).
pub(crate) fn install(monitor: &SloMonitor) {
    ist_obs::register_flush_hook(ist_obs::FlushHook {
        name: "serve.slo",
        sync: sync_gauges,
        json_lines: |_| {},
        summary: |_| {},
        reset: || {},
    });
    *current().lock().unwrap_or_else(|p| p.into_inner()) = Some(Arc::clone(&monitor.state));
}

/// Detaches `monitor` from the gauges if it is still the installed source.
pub(crate) fn uninstall(monitor: &SloMonitor) {
    let mut cur = current().lock().unwrap_or_else(|p| p.into_inner());
    if cur.as_ref().is_some_and(|s| Arc::ptr_eq(s, &monitor.state)) {
        *cur = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mon(cfg: SloConfig) -> SloMonitor {
        let m = SloMonitor::new(cfg);
        m.set_active(true);
        m
    }

    #[test]
    fn inactive_monitor_observes_nothing() {
        let m = SloMonitor::new(SloConfig::default());
        m.observe(1_000, true);
        let s = m.snapshot();
        assert!(!s.active);
        assert_eq!(s.window, 0);
        assert_eq!(s.total_observed, 0);
    }

    #[test]
    fn p99_and_error_rate_track_the_window() {
        let m = mon(SloConfig {
            slo_ms: 10,
            err_pct: 5.0,
            window: 100,
        });
        // 99 fast successes + 1 slow failure: p99 lands on the tail.
        for _ in 0..99 {
            m.observe(1_000, true);
        }
        m.observe(50_000, false);
        let s = m.snapshot();
        assert_eq!(s.window, 100);
        assert_eq!(s.p99_us, 1_000, "p99 of 99×1ms + 1×50ms is 1ms");
        assert!((s.error_pct - 1.0).abs() < 1e-9);
        assert!(s.latency_burn < 1.0);
        assert!(s.error_burn < 1.0);
        assert!(!s.breached);
    }

    #[test]
    fn breach_flips_on_either_burn_rate() {
        let lat = mon(SloConfig {
            slo_ms: 1,
            err_pct: 50.0,
            window: 10,
        });
        for _ in 0..10 {
            lat.observe(5_000, true); // 5ms vs a 1ms target
        }
        let s = lat.snapshot();
        assert!(s.latency_burn > 1.0);
        assert!(s.breached);

        let err = mon(SloConfig {
            slo_ms: 1_000,
            err_pct: 1.0,
            window: 10,
        });
        for i in 0..10 {
            err.observe(100, i % 2 == 0); // 50% errors vs a 1% target
        }
        let s = err.snapshot();
        assert!(s.error_burn > 1.0);
        assert!(s.breached);
    }

    #[test]
    fn window_evicts_oldest() {
        let m = mon(SloConfig {
            slo_ms: 100,
            err_pct: 1.0,
            window: 4,
        });
        for _ in 0..4 {
            m.observe(10, false);
        }
        for _ in 0..4 {
            m.observe(10, true);
        }
        let s = m.snapshot();
        assert_eq!(s.window, 4);
        assert_eq!(s.total_observed, 8);
        assert_eq!(s.error_pct, 0.0, "old failures must age out");
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let m = mon(SloConfig::default());
        m.observe(500, true);
        let json = m.snapshot().to_json();
        assert!(json.starts_with("{\"active\":true"));
        assert!(json.contains("\"p99_us\":500"));
        assert!(json.contains("\"breached\":false"));
        assert!(json.ends_with('}'));
    }
}
