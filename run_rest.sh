#!/bin/bash
cd /root/repo
# wait for table2 to finish
while kill -0 17743 2>/dev/null; do sleep 10; done
./target/release/table5 > results/table5.txt 2> results/table5.log
./target/release/fig2   > results/fig2.txt   2> results/fig2.log
./target/release/fig3   > results/fig3.txt   2> results/fig3.log
./target/release/fig4   > results/fig4.txt   2> results/fig4.log
./target/release/table6 > results/table6.txt 2> results/table6.log
./target/release/ablation_extra > results/ablation_extra.txt 2> results/ablation_extra.log
echo ALL_DONE > results/QUEUE_DONE
