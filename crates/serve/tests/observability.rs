//! Integration tests of request-level observability: the access log gets
//! exactly one well-formed line per finished request with a consistent
//! per-stage breakdown, the exemplar reservoir keeps the slowest requests,
//! and the engine's SLO monitor tracks outcomes. All tests manipulate
//! process-global obs state, so they serialize on a local lock.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use isrec_core::{snapshot, Isrec, IsrecConfig};
use ist_data::{IntentWorld, SequentialDataset, WorldConfig};
use ist_nn::Module as _;
use ist_obs::reqctx;
use ist_serve::{ModelSource, ModelSpec, ScoreEngine, ServeConfig, SloConfig};

static LOCK: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// A `Write` sink the test can read back after handing ownership to obs.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn tiny_dataset() -> SequentialDataset {
    IntentWorld::new(WorldConfig::beauty_like().scaled(0.1)).generate(5)
}

fn tiny_config() -> IsrecConfig {
    IsrecConfig {
        d: 16,
        d_prime: 4,
        lambda: 4,
        max_len: 8,
        layers: 1,
        heads: 2,
        gcn_layers: 1,
        ..Default::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ist-serve-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn snapshot_spec(dir: &Path, seed: u64) -> ModelSpec {
    let ds = tiny_dataset();
    let model = Isrec::new(&ds, tiny_config(), seed);
    let path = dir.join("model.bin");
    std::fs::write(&path, snapshot::save(&model.params()).unwrap()).unwrap();
    ModelSpec {
        dataset: ds,
        config: tiny_config(),
        seed,
        source: ModelSource::Snapshot(path),
    }
}

/// Pulls `"key":<u64>` out of a flat JSON line.
fn field_u64(line: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let rest = &line[line
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {line}"))
        + pat.len()..];
    rest.chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

fn field_str<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\":\"");
    let at = line
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {line}"))
        + pat.len();
    &line[at..at + line[at..].find('"').unwrap()]
}

#[test]
fn access_log_has_one_consistent_line_per_request() {
    let _g = serial();
    let buf = SharedBuf::default();
    reqctx::set_access_log_writer(Box::new(buf.clone()));
    reqctx::reset_exemplars();

    let dir = tmpdir("access-log");
    let engine = ScoreEngine::start(
        snapshot_spec(&dir, 7),
        ServeConfig {
            slo: Some(SloConfig::default()),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let ds = tiny_dataset();
    let n = 12usize;
    for i in 0..n {
        let seq = &ds.sequences[i % ds.sequences.len()];
        engine.recommend(&seq[..seq.len().min(6)], 5).unwrap();
    }
    // One invalid request must still produce a line, outcome "invalid".
    assert!(engine.recommend(&[], 5).is_err());
    drop(engine);
    reqctx::disable_access_log();

    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(lines.len(), n + 1, "one line per finished request:\n{text}");

    let mut ids = std::collections::BTreeSet::new();
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not JSON: {line}"
        );
        assert!(
            ids.insert(field_u64(line, "req")),
            "duplicate trace id: {line}"
        );
        let total = field_u64(line, "total_us");
        let stages: u64 = reqctx::STAGE_NAMES
            .iter()
            .map(|s| field_u64(line, &format!("{s}_us")))
            .sum();
        assert!(
            stages <= total,
            "stage breakdown exceeds the end-to-end latency: {line}"
        );
    }
    let ok = lines
        .iter()
        .filter(|l| field_str(l, "outcome") == "ok")
        .count();
    let invalid = lines
        .iter()
        .filter(|l| field_str(l, "outcome") == "invalid")
        .count();
    assert_eq!((ok, invalid), (n, 1), "outcomes miscounted:\n{text}");
    for line in lines.iter().filter(|l| field_str(l, "outcome") == "ok") {
        assert!(
            field_u64(line, "batch") >= 1,
            "answered without a batch: {line}"
        );
    }

    // The reservoir kept the slowest finished requests, slowest first.
    let exs = reqctx::exemplars();
    assert!(!exs.is_empty() && exs.len() <= reqctx::EXEMPLAR_CAP);
    assert!(
        exs.windows(2).all(|w| w[0].total_us >= w[1].total_us),
        "exemplars must sort slowest-first"
    );
    reqctx::reset_exemplars();
}

#[test]
fn slo_monitor_counts_outcomes_and_flags_error_breach() {
    let _g = serial();
    // Activate request observability for the engine via an access-log sink
    // (discarded); the SLO monitor reads the activation at start.
    let buf = SharedBuf::default();
    reqctx::set_access_log_writer(Box::new(buf.clone()));

    let dir = tmpdir("slo");
    let engine = ScoreEngine::start(
        snapshot_spec(&dir, 7),
        ServeConfig {
            slo: Some(SloConfig {
                slo_ms: 10_000, // lenient latency target: only errors breach
                err_pct: 1.0,
                window: 64,
            }),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let ds = tiny_dataset();
    let seq = &ds.sequences[0];
    for _ in 0..8 {
        engine.recommend(&seq[..seq.len().min(6)], 5).unwrap();
    }
    let s = engine.slo();
    assert!(s.active);
    assert_eq!(s.total_observed, 8);
    assert_eq!(s.error_pct, 0.0);
    assert!(!s.breached);

    // 4 invalid requests out of 12 ≫ the 1% error target.
    for _ in 0..4 {
        assert!(engine.recommend(&[], 5).is_err());
    }
    let s = engine.slo();
    assert_eq!(s.total_observed, 12);
    assert!(s.error_burn > 1.0, "error burn must exceed 1.0: {s:?}");
    assert!(s.breached);

    drop(engine);
    reqctx::disable_access_log();
}

#[test]
fn dark_engine_keeps_slo_and_access_log_silent() {
    let _g = serial();
    reqctx::disable_access_log();
    let dir = tmpdir("dark");
    let engine = ScoreEngine::start(snapshot_spec(&dir, 7), ServeConfig::default()).unwrap();
    let ds = tiny_dataset();
    let seq = &ds.sequences[0];
    engine.recommend(&seq[..seq.len().min(6)], 5).unwrap();
    let s = engine.slo();
    assert!(!s.active, "observability off must leave the monitor dark");
    assert_eq!(s.total_observed, 0);
}
