//! The score engine: a supervised scorer thread owning the (`!Send`) model,
//! fed by a bounded micro-batching request queue with per-request
//! deadlines, load shedding, panic recovery, and a degraded-mode fallback.
//!
//! ## Resilience model
//!
//! A supervisor thread owns the scorer: each scorer *incarnation* builds
//! the model, loads weights, and serves batches with `catch_unwind` around
//! every batch and reload. A panic fails only the poisoned batch's
//! requests (typed [`ServeError::ScorerPanic`]); the supervisor then
//! respawns a fresh incarnation with freshly-loaded weights, up to
//! `IST_SERVE_MAX_RESPAWNS` times. When the budget is exhausted the
//! circuit breaker trips into **degraded mode**: a zero-dependency
//! popularity/recency ranker ([`FallbackRanker`]) keeps answering (marked
//! `degraded: true`) until a [`reload`](ScoreEngine::reload) succeeds in
//! spawning a healthy scorer again.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use isrec_core::{snapshot, CheckpointManager, Isrec, IsrecConfig};
use ist_data::SequentialDataset;
use ist_nn::Module as _;
use ist_obs::reqctx::{self, ReqCtx, Stage};
use ist_tensor::Tensor;

use crate::cache::ReprCache;
use crate::error::ServeError;
use crate::fallback::FallbackRanker;
use crate::resilience::{BatchFault, ServeFaultPlan};
use crate::shard::{resolve_shards, score_sharded_timed, ShardPlan};
use crate::slo::{self, SloConfig, SloMonitor, SloSnapshot};

/// End-to-end request latency (enqueue → response), microseconds; the
/// summary table renders its p50/p95/p99.
static REQUEST_US: ist_obs::Histogram = ist_obs::Histogram::with_unit("serve.request_us", "us");
/// Requests coalesced per forward pass.
static BATCH_SIZE: ist_obs::Histogram = ist_obs::Histogram::with_unit("serve.batch_size", "req");
/// Requests shed by admission control (queue full).
static SHED: ist_obs::Counter = ist_obs::Counter::new("serve.shed");
/// Requests whose deadline passed before an answer.
static TIMED_OUT: ist_obs::Counter = ist_obs::Counter::new("serve.timed_out");
/// Scorer-thread panics caught by the supervisor.
static SCORER_PANICS: ist_obs::Counter = ist_obs::Counter::new("serve.scorer_panic");
/// Scorer incarnations respawned after a panic.
static RESPAWNS: ist_obs::Counter = ist_obs::Counter::new("serve.respawn");
/// Requests answered by the degraded-mode fallback ranker.
static DEGRADED_SERVED: ist_obs::Counter = ist_obs::Counter::new("serve.degraded_served");
/// Corrupt/torn checkpoints skipped during weight loads.
static RELOAD_SKIPPED: ist_obs::Counter = ist_obs::Counter::new("serve.reload_skipped");
/// 1 while the engine is serving fallback answers, 0 when healthy.
static DEGRADED: ist_obs::Gauge = ist_obs::Gauge::new("serve.degraded");
/// Finished requests, every outcome (exports as `serve_requests_total`;
/// the CI serve stage checks it against the driver's request count).
static REQUESTS: ist_obs::Counter = ist_obs::Counter::new("serve.requests");
/// Admission-queue depth after the latest enqueue/dispatch.
static QUEUE_DEPTH: ist_obs::Gauge = ist_obs::Gauge::new("serve.queue_depth");

/// Sentinel for "no checkpoint epoch" in the shared atomic.
const NO_EPOCH: u64 = u64::MAX;

/// Where the engine's weights come from.
#[derive(Clone, Debug)]
pub enum ModelSource {
    /// A single value-only snapshot file (what `isrec train --snapshot`
    /// writes). [`ScoreEngine::reload`] re-reads and re-validates it.
    Snapshot(PathBuf),
    /// A checkpoint directory: newest-valid-wins discovery at startup, and
    /// [`ScoreEngine::reload`] picks up strictly newer valid checkpoints.
    CheckpointDir(PathBuf),
}

/// Everything the scorer thread needs to build its model. The model itself
/// is `!Send`, so this spec crosses the thread boundary instead.
pub struct ModelSpec {
    /// Dataset the model was trained on (vocabulary + concept graph).
    pub dataset: SequentialDataset,
    /// Architecture hyper-parameters — must match the trained weights.
    pub config: IsrecConfig,
    /// Init seed (irrelevant once weights load, but kept for parity with
    /// the CLI's model construction).
    pub seed: u64,
    /// Weight source.
    pub source: ModelSource,
}

/// Engine knobs; [`ServeConfig::from_env`] reads the `IST_SERVE_*`
/// environment.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Maximum requests coalesced into one forward pass
    /// (`IST_SERVE_BATCH`, default 32, minimum 1).
    pub max_batch: usize,
    /// How long the scorer waits for more requests after the first one
    /// (`IST_SERVE_BATCH_TIMEOUT_US`, default 200µs; 0 scores whatever is
    /// already queued).
    pub batch_timeout: Duration,
    /// LRU capacity of the history→representation cache
    /// (`IST_SERVE_CACHE`, default 1024 entries; 0 disables caching).
    pub cache_entries: usize,
    /// Default per-request deadline applied by
    /// [`recommend`](ScoreEngine::recommend) (`IST_SERVE_DEADLINE_MS`;
    /// unset or 0 means no deadline).
    pub deadline: Option<Duration>,
    /// Admission-queue bound (`IST_SERVE_QUEUE`, default 1024; 0 means
    /// unbounded). When full, the queued request with the oldest deadline
    /// is shed with [`ServeError::Shed`].
    pub queue_cap: usize,
    /// How many scorer respawns a panic streak may consume before the
    /// circuit breaker trips into degraded mode
    /// (`IST_SERVE_MAX_RESPAWNS`, default 3). A successful degraded-mode
    /// recovery resets the budget.
    pub max_respawns: u32,
    /// Injected fault schedule. `None` reads `IST_SERVE_FAULTS` at
    /// [`ScoreEngine::start`]; tests pass an explicit plan.
    pub faults: Option<ServeFaultPlan>,
    /// Catalog-scoring shard count (`IST_SERVE_SHARDS`). `0` (the
    /// default) means auto: one shard per `ist_tensor` pool worker.
    /// Counts above the catalog size clamp to one item per shard.
    /// Scores and ranking are bitwise identical for every value.
    pub shards: usize,
    /// SLO targets for the rolling monitor. `None` reads
    /// `IST_SERVE_SLO_MS` / `IST_SERVE_SLO_ERR_PCT` /
    /// `IST_SERVE_SLO_WINDOW` at [`ScoreEngine::start`]; tests pass an
    /// explicit config. The monitor never affects scores or scheduling —
    /// it only observes.
    pub slo: Option<SloConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            batch_timeout: Duration::from_micros(200),
            cache_entries: 1024,
            deadline: None,
            queue_cap: 1024,
            max_respawns: 3,
            faults: None,
            shards: 0,
            slo: None,
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    // Warns once per process per variable (see `ist_obs::env`), so a soak
    // with a typo'd knob doesn't flood stderr from every config read.
    ist_obs::env::u64_or(name, default)
}

impl ServeConfig {
    /// Reads `IST_SERVE_BATCH`, `IST_SERVE_BATCH_TIMEOUT_US`,
    /// `IST_SERVE_CACHE`, `IST_SERVE_DEADLINE_MS`, `IST_SERVE_QUEUE`,
    /// `IST_SERVE_MAX_RESPAWNS` and `IST_SERVE_SHARDS`, falling back to
    /// the defaults above.
    pub fn from_env() -> Self {
        let d = ServeConfig::default();
        let deadline_ms = env_u64("IST_SERVE_DEADLINE_MS", 0);
        ServeConfig {
            max_batch: env_u64("IST_SERVE_BATCH", d.max_batch as u64).max(1) as usize,
            batch_timeout: Duration::from_micros(env_u64(
                "IST_SERVE_BATCH_TIMEOUT_US",
                d.batch_timeout.as_micros() as u64,
            )),
            cache_entries: env_u64("IST_SERVE_CACHE", d.cache_entries as u64) as usize,
            deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
            queue_cap: env_u64("IST_SERVE_QUEUE", d.queue_cap as u64) as usize,
            max_respawns: env_u64("IST_SERVE_MAX_RESPAWNS", d.max_respawns as u64) as u32,
            faults: None,
            shards: env_u64("IST_SERVE_SHARDS", d.shards as u64) as usize,
            slo: None,
        }
    }
}

/// One ranked item.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Recommendation {
    /// Item id.
    pub item: usize,
    /// Model score (higher is better).
    pub score: f32,
}

/// A served answer: the ranking plus how it was produced.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeResponse {
    /// Top-K items, best first.
    pub items: Vec<Recommendation>,
    /// True when the degraded-mode fallback ranker (not the model)
    /// produced this answer.
    pub degraded: bool,
}

/// A point-in-time view of the engine's counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Requests scored (model batches + degraded fallback).
    pub requests: u64,
    /// Forward passes run.
    pub batches: u64,
    /// Largest batch observed.
    pub max_batch: u64,
    /// Representation-cache hits.
    pub cache_hits: u64,
    /// Representation-cache misses.
    pub cache_misses: u64,
    /// Successful weight swaps via [`ScoreEngine::reload`].
    pub reloads: u64,
    /// Checkpoint epoch currently serving (None for snapshot sources).
    pub epoch: Option<u64>,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests whose deadline passed before an answer.
    pub timed_out: u64,
    /// Scorer panics caught (each fails only its own batch).
    pub scorer_panics: u64,
    /// Scorer incarnations respawned after panics.
    pub respawns: u64,
    /// Requests answered by the fallback ranker while degraded.
    pub degraded_served: u64,
    /// Corrupt/torn checkpoints skipped during weight loads.
    pub reload_skipped: u64,
    /// True while the engine is serving fallback answers.
    pub degraded: bool,
    /// Catalog-scoring shards in effect (0 until the scorer builds its
    /// plan; the auto setting resolves to the pool size here).
    pub shards: u64,
}

impl EngineStats {
    /// Mean requests per forward pass.
    pub fn avg_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.requests as f64 / self.batches as f64
    }

    /// Cache hits / lookups (0.0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }
}

/// One-shot response slot: the scorer fills it, the caller waits on it.
///
/// `canceled` arbitrates the timeout/shed race: whichever side first wins
/// `cancel()` owns the request's fate (and its counter increment), so a
/// request is never double-counted as both timed out and shed.
struct Slot<T> {
    cell: Mutex<Option<Result<T, ServeError>>>,
    ready: Condvar,
    canceled: AtomicBool,
}

impl<T> Slot<T> {
    fn new() -> Slot<T> {
        Slot {
            cell: Mutex::new(None),
            ready: Condvar::new(),
            canceled: AtomicBool::new(false),
        }
    }

    fn fill(&self, result: Result<T, ServeError>) {
        let mut cell = self.cell.lock().unwrap_or_else(|p| p.into_inner());
        *cell = Some(result);
        self.ready.notify_all();
    }

    /// Blocks until filled, or until `deadline` passes (`None` return).
    /// `deadline: None` waits forever.
    fn wait_until(&self, deadline: Option<Instant>) -> Option<Result<T, ServeError>> {
        let mut cell = self.cell.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(result) = cell.take() {
                return Some(result);
            }
            match deadline {
                None => cell = self.ready.wait(cell).unwrap_or_else(|p| p.into_inner()),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return None;
                    }
                    let (guard, _) = self
                        .ready
                        .wait_timeout(cell, d - now)
                        .unwrap_or_else(|p| p.into_inner());
                    cell = guard;
                }
            }
        }
    }

    /// Claims the request: true for the first caller only.
    fn cancel(&self) -> bool {
        !self.canceled.swap(true, Ordering::Relaxed)
    }

    fn is_canceled(&self) -> bool {
        self.canceled.load(Ordering::Relaxed)
    }
}

/// A queued recommendation request, carrying everything admission control
/// and the batcher need to expire or shed it.
struct QueuedScore {
    history: Vec<usize>,
    k: usize,
    /// The deadline budget the caller asked for (for the error message).
    budget: Option<Duration>,
    /// Absolute deadline (admission time + budget).
    deadline: Option<Instant>,
    /// When the request entered the queue.
    admitted: Instant,
    /// Admission order, the shed/expiry tiebreaker.
    seq: u64,
    slot: Arc<Slot<ServeResponse>>,
    /// Per-request trace context (None when observability is inactive —
    /// the whole pipeline then skips every stage probe).
    ctx: Option<Arc<ReqCtx>>,
}

/// Shed priority: the request whose deadline (or, lacking one, admission
/// time) is oldest goes first; admission order breaks ties.
fn shed_key(s: &QueuedScore) -> (Instant, u64) {
    (s.deadline.unwrap_or(s.admitted), s.seq)
}

enum Job {
    Score(QueuedScore),
    Reload { slot: Arc<Slot<Option<u64>>> },
}

struct QueueState {
    jobs: VecDeque<Job>,
    /// Number of `Job::Score` entries in `jobs` (reload jobs are control
    /// plane and never count against the admission cap).
    score_len: usize,
    shutdown: bool,
}

impl QueueState {
    fn pop_job(&mut self) -> Option<Job> {
        let job = self.jobs.pop_front();
        if matches!(job, Some(Job::Score(_))) {
            self.score_len -= 1;
        }
        job
    }
}

struct Shared {
    queue: Mutex<QueueState>,
    cond: Condvar,
    requests: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    reloads: AtomicU64,
    epoch: AtomicU64,
    shed: AtomicU64,
    timed_out: AtomicU64,
    scorer_panics: AtomicU64,
    respawns: AtomicU64,
    degraded_served: AtomicU64,
    reload_skipped: AtomicU64,
    degraded: AtomicBool,
    /// Shard count the scorer's current plan resolved to (0 pre-build).
    shards: AtomicU64,
    /// Admission sequence numbers (shed/expiry tiebreaker).
    seq: AtomicU64,
    /// Catalog size, for request validation off the scorer thread.
    num_items: usize,
    /// Degraded-mode ranker, built once at startup.
    fallback: FallbackRanker,
    /// Injected fault schedule (ordinal counters live inside the plan).
    faults: Mutex<ServeFaultPlan>,
    /// Fast path: false once the plan drains, so the healthy path never
    /// takes the fault lock.
    faults_active: AtomicBool,
    /// Rolling p99/error-rate monitor (inactive unless observability is
    /// on — one relaxed load per finished request then).
    slo: SloMonitor,
}

impl Shared {
    fn new(
        num_items: usize,
        fallback: FallbackRanker,
        faults: ServeFaultPlan,
        slo: SloMonitor,
    ) -> Shared {
        let faults_active = AtomicBool::new(!faults.is_empty());
        Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                score_len: 0,
                shutdown: false,
            }),
            cond: Condvar::new(),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            epoch: AtomicU64::new(NO_EPOCH),
            shed: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            scorer_panics: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            degraded_served: AtomicU64::new(0),
            reload_skipped: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            shards: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            num_items,
            fallback,
            faults: Mutex::new(faults),
            faults_active,
            slo,
        }
    }

    fn lock_queue(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.queue.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// A running inference engine. Construction ([`ScoreEngine::start`]) spawns
/// the supervisor + scorer threads, builds the model there, and loads
/// weights; dropping the engine shuts both down. `&ScoreEngine` is
/// shareable across client threads — [`recommend`](ScoreEngine::recommend)
/// is `&self` and every call returns a typed result before its deadline:
/// the engine never leaves a caller blocked past its budget and never
/// propagates a scorer panic across the API boundary.
pub struct ScoreEngine {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
    cfg: ServeConfig,
}

impl ScoreEngine {
    /// Builds the model on a fresh scorer thread and loads its weights.
    /// Returns only once the model is ready to serve (or failed to load).
    pub fn start(spec: ModelSpec, cfg: ServeConfig) -> Result<ScoreEngine, String> {
        let fallback = FallbackRanker::build(&spec.dataset);
        let faults = cfg.faults.clone().unwrap_or_else(ServeFaultPlan::from_env);
        let monitor = SloMonitor::new(cfg.slo.clone().unwrap_or_else(SloConfig::from_env));
        // The monitor samples only while something can read it (metrics,
        // access log, trace, or a scrape endpoint): off means one relaxed
        // load per request and an all-zero snapshot.
        monitor.set_active(reqctx::active() || ist_obs::export::active());
        let shared = Arc::new(Shared::new(
            spec.dataset.num_items,
            fallback,
            faults,
            monitor.clone(),
        ));
        slo::install(&monitor);
        install_health_provider(&shared);
        let worker_shared = Arc::clone(&shared);
        let worker_cfg = cfg.clone();
        let (ready_tx, ready_rx) = mpsc::channel::<Result<(), String>>();
        let worker = std::thread::Builder::new()
            .name("ist-serve-supervisor".into())
            .spawn(move || supervisor_thread(spec, worker_cfg, worker_shared, ready_tx))
            .map_err(|e| format!("spawn supervisor thread: {e}"))?;
        let mut engine = ScoreEngine {
            shared,
            worker: Some(worker),
            cfg,
        };
        match ready_rx.recv() {
            Ok(Ok(())) => Ok(engine),
            Ok(Err(e)) => {
                engine.join_worker();
                Err(e)
            }
            Err(_) => {
                engine.join_worker();
                Err("scorer thread died during startup".into())
            }
        }
    }

    /// Scores `history` against the full catalog and returns the top `k`
    /// items, best first. Applies the configured default deadline
    /// (`ServeConfig::deadline` / `IST_SERVE_DEADLINE_MS`) when set.
    pub fn recommend(&self, history: &[usize], k: usize) -> Result<ServeResponse, ServeError> {
        self.recommend_opt(history, k, self.cfg.deadline)
    }

    /// Like [`recommend`](ScoreEngine::recommend), but with an explicit
    /// per-request deadline. Returns [`ServeError::DeadlineExceeded`] no
    /// later than (approximately) `budget` after the call, whatever state
    /// the queue or scorer is in.
    pub fn recommend_with_deadline(
        &self,
        history: &[usize],
        k: usize,
        budget: Duration,
    ) -> Result<ServeResponse, ServeError> {
        self.recommend_opt(history, k, Some(budget))
    }

    fn recommend_opt(
        &self,
        history: &[usize],
        k: usize,
        budget: Option<Duration>,
    ) -> Result<ServeResponse, ServeError> {
        // The trace context is born before validation so invalid requests
        // still land in the access log (outcome "invalid"); None when
        // observability is off, which turns every probe below into a
        // single branch.
        let start = Instant::now();
        let ctx = ReqCtx::start(history.len(), k);
        let out = self.recommend_inner(history, k, budget, start, &ctx);
        REQUESTS.inc();
        let (outcome, degraded) = match &out {
            Ok(resp) => ("ok", resp.degraded),
            Err(e) => (e.kind(), false),
        };
        let total_us = match ctx {
            Some(c) => reqctx::finish(&c, outcome, degraded),
            None => start.elapsed().as_micros() as u64,
        };
        REQUEST_US.record(total_us);
        self.shared.slo.observe(total_us, out.is_ok());
        out
    }

    fn recommend_inner(
        &self,
        history: &[usize],
        k: usize,
        budget: Option<Duration>,
        start: Instant,
        ctx: &Option<Arc<ReqCtx>>,
    ) -> Result<ServeResponse, ServeError> {
        if history.is_empty() {
            return Err(ServeError::InvalidRequest(
                "empty history: nothing to condition the model on".into(),
            ));
        }
        if k == 0 {
            return Err(ServeError::InvalidRequest(
                "k == 0: no items requested".into(),
            ));
        }
        if let Some(&bad) = history.iter().find(|&&item| item >= self.shared.num_items) {
            return Err(ServeError::InvalidRequest(format!(
                "item id {bad} outside the catalog ({} items)",
                self.shared.num_items
            )));
        }
        let mut span = ist_obs::Span::enter("serve.request");
        span.add_field("k", k);
        if let Some(c) = ctx {
            span.add_field("req", c.id() as usize);
        }
        let deadline = budget.map(|b| start + b);
        let slot = Arc::new(Slot::new());
        self.enqueue_score(QueuedScore {
            history: history.to_vec(),
            k,
            budget,
            deadline,
            admitted: start,
            seq: self.shared.seq.fetch_add(1, Ordering::Relaxed),
            slot: Arc::clone(&slot),
            ctx: ctx.clone(),
        })?;
        let out = match slot.wait_until(deadline) {
            Some(result) => result,
            None => {
                // Caller-side expiry: whoever wins the cancel owns the
                // timed_out increment (the batcher may be racing us).
                if slot.cancel() {
                    self.shared.timed_out.fetch_add(1, Ordering::Relaxed);
                    TIMED_OUT.inc();
                }
                Err(ServeError::DeadlineExceeded {
                    budget: budget.unwrap_or_default(),
                })
            }
        };
        if let Ok(resp) = &out {
            span.add_field("items", resp.items.len());
            span.add_field("degraded", resp.degraded as u64);
        }
        out
    }

    /// Point-in-time SLO snapshot (all-zero/inactive when observability is
    /// off). See [`crate::slo`] for the burn-rate semantics.
    pub fn slo(&self) -> SloSnapshot {
        self.shared.slo.snapshot()
    }

    /// Re-checks the weight source. For a checkpoint dir, a strictly newer
    /// checkpoint that passes every integrity check is swapped in (and its
    /// epoch returned); corrupt or torn files are skipped with a warning
    /// and `Ok(None)` — the old model keeps serving. For a snapshot file,
    /// the file is re-validated and re-applied (returns `Ok(None)`).
    /// Every swap clears the representation cache.
    ///
    /// While degraded, a successful reload is also the recovery path: it
    /// spawns a fresh scorer, resets the respawn budget, and returns the
    /// epoch now serving.
    pub fn reload(&self) -> Result<Option<u64>, ServeError> {
        let slot = Arc::new(Slot::new());
        self.enqueue_reload(Arc::clone(&slot))?;
        slot.wait_until(None).unwrap_or(Err(ServeError::Shutdown))
    }

    /// Current counters.
    pub fn stats(&self) -> EngineStats {
        let epoch = self.shared.epoch.load(Ordering::Relaxed);
        EngineStats {
            requests: self.shared.requests.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            max_batch: self.shared.max_batch.load(Ordering::Relaxed),
            cache_hits: self.shared.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.shared.cache_misses.load(Ordering::Relaxed),
            reloads: self.shared.reloads.load(Ordering::Relaxed),
            epoch: (epoch != NO_EPOCH).then_some(epoch),
            shed: self.shared.shed.load(Ordering::Relaxed),
            timed_out: self.shared.timed_out.load(Ordering::Relaxed),
            scorer_panics: self.shared.scorer_panics.load(Ordering::Relaxed),
            respawns: self.shared.respawns.load(Ordering::Relaxed),
            degraded_served: self.shared.degraded_served.load(Ordering::Relaxed),
            reload_skipped: self.shared.reload_skipped.load(Ordering::Relaxed),
            degraded: self.shared.degraded.load(Ordering::Relaxed),
            shards: self.shared.shards.load(Ordering::Relaxed),
        }
    }

    /// Admission control: refuses on shutdown, sheds oldest-deadline-first
    /// when the bounded queue is full (the newcomer itself is the victim
    /// when its deadline is the soonest).
    fn enqueue_score(&self, js: QueuedScore) -> Result<(), ServeError> {
        let shared = &self.shared;
        let mut q = shared.lock_queue();
        if q.shutdown {
            return Err(ServeError::Shutdown);
        }
        let cap = self.cfg.queue_cap;
        if cap > 0 && q.score_len >= cap {
            // Prefer evicting a request whose caller already gave up —
            // that frees a slot without shedding anyone.
            let dead = q
                .jobs
                .iter()
                .position(|job| matches!(job, Job::Score(s) if s.slot.is_canceled()));
            if let Some(i) = dead {
                q.jobs.remove(i);
                q.score_len -= 1;
            } else {
                let new_key = shed_key(&js);
                let victim = q
                    .jobs
                    .iter()
                    .enumerate()
                    .filter_map(|(i, job)| match job {
                        Job::Score(s) => Some((i, shed_key(s))),
                        Job::Reload { .. } => None,
                    })
                    .min_by_key(|&(_, key)| key);
                match victim {
                    Some((i, key)) if key <= new_key => {
                        let Some(Job::Score(v)) = q.jobs.remove(i) else {
                            unreachable!("victim index held a Score job");
                        };
                        q.score_len -= 1;
                        // Queue → slot is the global lock order, so filling
                        // under the queue lock is deadlock-free.
                        if v.slot.cancel() {
                            shared.shed.fetch_add(1, Ordering::Relaxed);
                            SHED.inc();
                            v.slot.fill(Err(ServeError::Shed));
                        }
                    }
                    _ => {
                        // The newcomer has the soonest deadline: shed it.
                        drop(q);
                        shared.shed.fetch_add(1, Ordering::Relaxed);
                        SHED.inc();
                        return Err(ServeError::Shed);
                    }
                }
            }
        }
        q.score_len += 1;
        q.jobs.push_back(Job::Score(js));
        QUEUE_DEPTH.set(q.score_len as u64);
        drop(q);
        shared.cond.notify_all();
        Ok(())
    }

    fn enqueue_reload(&self, slot: Arc<Slot<Option<u64>>>) -> Result<(), ServeError> {
        let mut q = self.shared.lock_queue();
        if q.shutdown {
            return Err(ServeError::Shutdown);
        }
        q.jobs.push_back(Job::Reload { slot });
        drop(q);
        self.shared.cond.notify_all();
        Ok(())
    }

    fn join_worker(&mut self) {
        {
            let mut q = self.shared.lock_queue();
            q.shutdown = true;
        }
        self.shared.cond.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for ScoreEngine {
    fn drop(&mut self) {
        self.join_worker();
        ist_obs::export::clear_health_provider();
        slo::uninstall(&self.shared.slo);
    }
}

/// `/healthz` for this engine: 503 + `"degraded"` while the fallback is
/// serving, 200 otherwise, with respawn/panic/queue-depth counts and the
/// live SLO snapshot in the body.
fn install_health_provider(shared: &Arc<Shared>) {
    let shared = Arc::clone(shared);
    ist_obs::export::set_health_provider(Box::new(move || {
        let degraded = shared.degraded.load(Ordering::Relaxed);
        let queue_depth = shared.lock_queue().score_len;
        let body = format!(
            "{{\"status\":{:?},\"engine\":{{\"degraded\":{degraded},\"respawns\":{},\
             \"scorer_panics\":{},\"queue_depth\":{queue_depth},\"slo\":{}}}}}\n",
            if degraded { "degraded" } else { "ok" },
            shared.respawns.load(Ordering::Relaxed),
            shared.scorer_panics.load(Ordering::Relaxed),
            shared.slo.snapshot().to_json(),
        );
        (if degraded { 503 } else { 200 }, body)
    }));
}

// ---------------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------------

/// Why a scorer incarnation returned.
enum Exit {
    /// Clean shutdown (or a startup failure already reported via the
    /// handshake channel).
    Shutdown,
    /// A batch or reload panicked; the poisoned work was already answered
    /// with [`ServeError::ScorerPanic`].
    Panicked(String),
}

fn panic_msg(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Spawns one scorer incarnation and waits for its load handshake. On a
/// handshake failure the incarnation is joined before returning `Err`, so
/// a failed (re)spawn never leaks a thread.
fn spawn_scorer<'scope, 'env>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    spec: &'env ModelSpec,
    cfg: &'env ServeConfig,
    shared: &'env Shared,
    incarnation: u64,
) -> Result<std::thread::ScopedJoinHandle<'scope, Exit>, String> {
    let (ready_tx, ready_rx) = mpsc::channel::<Result<(), String>>();
    let handle = std::thread::Builder::new()
        .name(format!("ist-serve-scorer-{incarnation}"))
        .spawn_scoped(scope, move || {
            scorer_incarnation(spec, cfg, shared, ready_tx)
        })
        .map_err(|e| format!("spawn scorer thread: {e}"))?;
    match ready_rx.recv() {
        Ok(Ok(())) => Ok(handle),
        Ok(Err(e)) => {
            let _ = handle.join();
            Err(e)
        }
        Err(_) => {
            let _ = handle.join();
            Err("scorer thread died during startup".into())
        }
    }
}

/// Owns the scorer's lifecycle: spawn, forward the startup handshake,
/// respawn on panic (bounded), trip into degraded mode when the budget is
/// exhausted, and drain the queue with typed errors on shutdown.
fn supervisor_thread(
    spec: ModelSpec,
    cfg: ServeConfig,
    shared: Arc<Shared>,
    startup_tx: mpsc::Sender<Result<(), String>>,
) {
    let spec = &spec;
    let cfg = &cfg;
    let shared = &*shared;
    std::thread::scope(|scope| {
        let mut incarnation: u64 = 0;
        let mut handle = match spawn_scorer(scope, spec, cfg, shared, incarnation) {
            Ok(handle) => {
                let _ = startup_tx.send(Ok(()));
                handle
            }
            Err(e) => {
                let _ = startup_tx.send(Err(e));
                return;
            }
        };
        let mut respawns_left = cfg.max_respawns;
        loop {
            let exit = match handle.join() {
                Ok(exit) => exit,
                // A panic that escaped the per-batch guards (e.g. in the
                // queue machinery itself) still only costs an incarnation.
                Err(payload) => Exit::Panicked(panic_msg(payload.as_ref())),
            };
            let why = match exit {
                Exit::Shutdown => return,
                Exit::Panicked(why) => why,
            };
            shared.scorer_panics.fetch_add(1, Ordering::Relaxed);
            SCORER_PANICS.inc();
            eprintln!("warning: scorer panicked ({why}); supervisor recovering");
            if shared.lock_queue().shutdown {
                drain_queue_on_shutdown(shared);
                return;
            }
            let mut respawned = None;
            while respawns_left > 0 {
                respawns_left -= 1;
                incarnation += 1;
                shared.respawns.fetch_add(1, Ordering::Relaxed);
                RESPAWNS.inc();
                match spawn_scorer(scope, spec, cfg, shared, incarnation) {
                    Ok(handle) => {
                        respawned = Some(handle);
                        break;
                    }
                    Err(e) => eprintln!("warning: scorer respawn failed: {e}"),
                }
            }
            match respawned {
                Some(h) => handle = h,
                None => {
                    // Circuit breaker: answer from the fallback until a
                    // reload brings a healthy scorer back.
                    match degraded_loop(scope, spec, cfg, shared, &mut incarnation) {
                        Some(h) => {
                            handle = h;
                            respawns_left = cfg.max_respawns;
                        }
                        None => return,
                    }
                }
            }
        }
    });
}

/// Degraded mode: the supervisor itself answers requests from the
/// [`FallbackRanker`] (marked `degraded: true`) and treats each reload
/// request as a recovery attempt. Returns the healthy scorer's handle on
/// recovery, or `None` on shutdown (queue fully drained either way).
fn degraded_loop<'scope, 'env>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    spec: &'env ModelSpec,
    cfg: &'env ServeConfig,
    shared: &'env Shared,
    incarnation: &mut u64,
) -> Option<std::thread::ScopedJoinHandle<'scope, Exit>> {
    shared.degraded.store(true, Ordering::Relaxed);
    DEGRADED.set(1);
    eprintln!(
        "warning: scorer respawn budget exhausted — serving popularity fallback \
         (degraded) until a reload succeeds"
    );
    loop {
        let job = {
            let mut q = shared.lock_queue();
            loop {
                match q.pop_job() {
                    Some(job) => break Some(job),
                    None if q.shutdown => break None,
                    None => q = shared.cond.wait(q).unwrap_or_else(|p| p.into_inner()),
                }
            }
        };
        let Some(job) = job else {
            // Shutdown with an already-empty queue: nothing to drain.
            return None;
        };
        match job {
            Job::Score(js) => {
                let Some(req) = expire_or_admit(shared, js) else {
                    continue;
                };
                shared.requests.fetch_add(1, Ordering::Relaxed);
                shared.degraded_served.fetch_add(1, Ordering::Relaxed);
                DEGRADED_SERVED.inc();
                let result = shared
                    .fallback
                    .rank(&req.history, req.k)
                    .map(|items| ServeResponse {
                        items,
                        degraded: true,
                    });
                if let Some(c) = &req.ctx {
                    // Fallback answers are unbatched and unsharded.
                    c.set_batch_info(false, 1, 0);
                    c.mark_filled();
                }
                req.slot.fill(result);
            }
            Job::Reload { slot } => {
                *incarnation += 1;
                match spawn_scorer(scope, spec, cfg, shared, *incarnation) {
                    Ok(handle) => {
                        shared.degraded.store(false, Ordering::Relaxed);
                        DEGRADED.set(0);
                        shared.reloads.fetch_add(1, Ordering::Relaxed);
                        let epoch = shared.epoch.load(Ordering::Relaxed);
                        slot.fill(Ok((epoch != NO_EPOCH).then_some(epoch)));
                        return Some(handle);
                    }
                    Err(e) => {
                        slot.fill(Err(ServeError::Internal(format!(
                            "reload failed, engine still degraded: {e}"
                        ))));
                    }
                }
            }
        }
    }
}

/// Answers every queued job with [`ServeError::Shutdown`] so no caller is
/// left blocked when the engine dies mid-panic-recovery.
fn drain_queue_on_shutdown(shared: &Shared) {
    loop {
        let job = shared.lock_queue().pop_job();
        let Some(job) = job else { return };
        match job {
            Job::Score(js) => {
                if js.slot.cancel() {
                    js.slot.fill(Err(ServeError::Shutdown));
                }
            }
            Job::Reload { slot } => slot.fill(Err(ServeError::Shutdown)),
        }
    }
}

// ---------------------------------------------------------------------------
// Scorer incarnation
// ---------------------------------------------------------------------------

/// Loads weights into `model` from `source`. Validation is all-before-apply
/// (see `snapshot::load_full` / `load_latest_values_report`), so an invalid
/// source leaves the parameters untouched. Returns the checkpoint epoch
/// loaded, when the source has one. Subject to `corrupt_reload` fault
/// injection.
fn load_weights(
    model: &Isrec,
    source: &ModelSource,
    newer_than: Option<u64>,
    shared: &Shared,
) -> Result<Option<u64>, String> {
    if shared.faults_active.load(Ordering::Relaxed) {
        let mut plan = shared.faults.lock().unwrap_or_else(|p| p.into_inner());
        let corrupt = plan.take_corrupt_reload();
        if plan.is_empty() {
            shared.faults_active.store(false, Ordering::Relaxed);
        }
        drop(plan);
        if corrupt {
            return Err("fault injection: weight load treated as corrupt".into());
        }
    }
    let params = model.params();
    match source {
        ModelSource::Snapshot(path) => {
            let bytes = std::fs::read(path).map_err(|e| format!("read snapshot {path:?}: {e}"))?;
            let (restored, _) = snapshot::load_full(&params, bytes.into())?;
            if restored != params.len() {
                return Err(format!(
                    "snapshot {path:?} restored {restored}/{} params — wrong file or config?",
                    params.len()
                ));
            }
            Ok(None)
        }
        ModelSource::CheckpointDir(dir) => {
            let mgr = CheckpointManager::new(dir, 3)?;
            let report = mgr.load_latest_values_report(&params, newer_than);
            if report.skipped > 0 {
                shared
                    .reload_skipped
                    .fetch_add(report.skipped as u64, Ordering::Relaxed);
                RELOAD_SKIPPED.add(report.skipped as u64);
            }
            Ok(report.epoch)
        }
    }
}

/// An admitted request, ready to score.
struct ScoreReq {
    history: Vec<usize>,
    k: usize,
    slot: Arc<Slot<ServeResponse>>,
    /// Trace context (None when observability is off).
    ctx: Option<Arc<ReqCtx>>,
    /// When the batcher popped this request off the queue — the boundary
    /// between its queue-wait and batch-assembly stages. Only taken when
    /// traced.
    popped: Option<Instant>,
}

/// Pop-time admission: skips requests whose caller already gave up, and
/// answers queue-expired deadlines right here — an expired request never
/// wastes a forward pass.
fn expire_or_admit(shared: &Shared, js: QueuedScore) -> Option<ScoreReq> {
    if js.slot.is_canceled() {
        return None;
    }
    let now = Instant::now();
    if let Some(c) = &js.ctx {
        c.record(Stage::Queue, now.saturating_duration_since(js.admitted));
    }
    if let Some(d) = js.deadline {
        if now >= d {
            if js.slot.cancel() {
                shared.timed_out.fetch_add(1, Ordering::Relaxed);
                TIMED_OUT.inc();
                if let Some(c) = &js.ctx {
                    c.mark_filled();
                }
                js.slot.fill(Err(ServeError::DeadlineExceeded {
                    budget: js.budget.unwrap_or_default(),
                }));
            }
            return None;
        }
    }
    let popped = js.ctx.is_some().then_some(now);
    Some(ScoreReq {
        history: js.history,
        k: js.k,
        slot: js.slot,
        ctx: js.ctx,
        popped,
    })
}

enum Work {
    Batch(Vec<ScoreReq>),
    Reload(Arc<Slot<Option<u64>>>),
    Quit,
}

/// Blocks for the next unit of work, coalescing admitted requests into one
/// batch: after the first request it waits up to `batch_timeout` for more,
/// up to `max_batch`, stopping at a Reload so it runs between batches.
fn next_work(shared: &Shared, cfg: &ServeConfig) -> Work {
    let mut q = shared.lock_queue();
    loop {
        match q.pop_job() {
            Some(Job::Reload { slot }) => return Work::Reload(slot),
            Some(Job::Score(js)) => {
                let Some(first) = expire_or_admit(shared, js) else {
                    continue;
                };
                let mut batch = vec![first];
                let window = Instant::now() + cfg.batch_timeout;
                loop {
                    while batch.len() < cfg.max_batch
                        && matches!(q.jobs.front(), Some(Job::Score(_)))
                    {
                        match q.pop_job() {
                            Some(Job::Score(js)) => {
                                if let Some(req) = expire_or_admit(shared, js) {
                                    batch.push(req);
                                }
                            }
                            _ => unreachable!("front was a Score job"),
                        }
                    }
                    let now = Instant::now();
                    if batch.len() >= cfg.max_batch
                        || now >= window
                        || q.shutdown
                        || matches!(q.jobs.front(), Some(Job::Reload { .. }))
                    {
                        QUEUE_DEPTH.set(q.score_len as u64);
                        for req in &batch {
                            if let (Some(c), Some(p)) = (&req.ctx, req.popped) {
                                c.record(Stage::Batch, p.elapsed());
                            }
                        }
                        return Work::Batch(batch);
                    }
                    let (guard, _) = shared
                        .cond
                        .wait_timeout(q, window - now)
                        .unwrap_or_else(|p| p.into_inner());
                    q = guard;
                }
            }
            None if q.shutdown => return Work::Quit,
            None => {
                q = shared.cond.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        }
    }
}

/// One scorer incarnation: build + load (handshaked back to the
/// supervisor), then serve batches and reloads until shutdown or a panic.
/// Every batch and reload runs under `catch_unwind`, and a panic fails only
/// the work that was executing — its requests get a typed
/// [`ServeError::ScorerPanic`] before the incarnation exits.
fn scorer_incarnation(
    spec: &ModelSpec,
    cfg: &ServeConfig,
    shared: &Shared,
    ready_tx: mpsc::Sender<Result<(), String>>,
) -> Exit {
    let built = catch_unwind(AssertUnwindSafe(
        || -> Result<(Isrec, Option<u64>), String> {
            let model = Isrec::new(&spec.dataset, spec.config.clone(), spec.seed);
            let epoch = match load_weights(&model, &spec.source, None, shared)? {
                Some(epoch) => Some(epoch),
                None => match &spec.source {
                    ModelSource::CheckpointDir(dir) => {
                        return Err(format!("no valid checkpoint in {dir:?}"));
                    }
                    ModelSource::Snapshot(_) => None,
                },
            };
            Ok((model, epoch))
        },
    ));
    let (model, mut epoch) = match built {
        Ok(Ok(ok)) => ok,
        Ok(Err(e)) => {
            let _ = ready_tx.send(Err(e));
            return Exit::Shutdown;
        }
        Err(payload) => {
            let _ = ready_tx.send(Err(format!(
                "scorer startup panicked: {}",
                panic_msg(payload.as_ref())
            )));
            return Exit::Shutdown;
        }
    };
    if let Some(e) = epoch {
        shared.epoch.store(e, Ordering::Relaxed);
    }
    let mut table_t = model.output_item_table_t();
    // Shard bounds over the table's columns; the table itself is viewed in
    // place by `gemm_cols`, never copied per shard.
    let mut plan = ShardPlan::new(table_t.shape()[1], resolve_shards(cfg.shards));
    shared
        .shards
        .store(plan.num_shards() as u64, Ordering::Relaxed);
    let mut cache = ReprCache::new(cfg.cache_entries);
    let _ = ready_tx.send(Ok(()));

    loop {
        match next_work(shared, cfg) {
            Work::Quit => return Exit::Shutdown,
            Work::Reload(slot) => {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    reload_model(
                        spec,
                        cfg,
                        &model,
                        &mut epoch,
                        &mut table_t,
                        &mut plan,
                        &mut cache,
                        shared,
                    )
                }));
                match outcome {
                    Ok(result) => {
                        if matches!(result, Ok(Some(_)))
                            || matches!(&spec.source, ModelSource::Snapshot(_) if result.is_ok())
                        {
                            shared.reloads.fetch_add(1, Ordering::Relaxed);
                        }
                        if let Ok(Some(e)) = &result {
                            shared.epoch.store(*e, Ordering::Relaxed);
                        }
                        slot.fill(result.map_err(ServeError::Internal));
                    }
                    Err(payload) => {
                        let why = panic_msg(payload.as_ref());
                        slot.fill(Err(ServeError::ScorerPanic(why.clone())));
                        return Exit::Panicked(why);
                    }
                }
            }
            Work::Batch(batch) => {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    process_batch(&model, &table_t, &plan, &mut cache, shared, &batch)
                }));
                if let Err(payload) = outcome {
                    // Fail only the poisoned batch: each of its requests
                    // gets a typed error; everyone still queued is served
                    // by the respawned incarnation.
                    let why = panic_msg(payload.as_ref());
                    for req in &batch {
                        if let Some(c) = &req.ctx {
                            c.mark_filled();
                        }
                        req.slot.fill(Err(ServeError::ScorerPanic(why.clone())));
                    }
                    return Exit::Panicked(why);
                }
            }
        }
    }
}

/// Applies a reload request. The scorer is single-threaded, so swapping the
/// weights + table between batches is atomic from every caller's view.
/// The shard plan is re-sliced over the fresh table — bounds only, the
/// table data is never duplicated per shard.
#[allow(clippy::too_many_arguments)]
fn reload_model(
    spec: &ModelSpec,
    cfg: &ServeConfig,
    model: &Isrec,
    epoch: &mut Option<u64>,
    table_t: &mut Tensor,
    plan: &mut ShardPlan,
    cache: &mut ReprCache,
    shared: &Shared,
) -> Result<Option<u64>, String> {
    let mut swap_table = |table_t: &mut Tensor, plan: &mut ShardPlan| {
        *table_t = model.output_item_table_t();
        *plan = ShardPlan::new(table_t.shape()[1], resolve_shards(cfg.shards));
        shared
            .shards
            .store(plan.num_shards() as u64, Ordering::Relaxed);
        cache.clear();
    };
    match load_weights(model, &spec.source, *epoch, shared)? {
        Some(new_epoch) => {
            *epoch = Some(new_epoch);
            swap_table(table_t, plan);
            Ok(Some(new_epoch))
        }
        None => match &spec.source {
            // Snapshot reload always re-applies the (validated) file.
            ModelSource::Snapshot(_) => {
                swap_table(table_t, plan);
                Ok(None)
            }
            ModelSource::CheckpointDir(_) => Ok(None),
        },
    }
}

/// Fetches the injected fault for the batch about to score. Fast path: one
/// relaxed load once the plan has drained.
fn take_batch_fault(shared: &Shared) -> Option<BatchFault> {
    if !shared.faults_active.load(Ordering::Relaxed) {
        return None;
    }
    let mut plan = shared.faults.lock().unwrap_or_else(|p| p.into_inner());
    let fault = plan.take_batch();
    if plan.is_empty() {
        shared.faults_active.store(false, Ordering::Relaxed);
    }
    (fault != BatchFault::default()).then_some(fault)
}

fn process_batch(
    model: &Isrec,
    table_t: &Tensor,
    plan: &ShardPlan,
    cache: &mut ReprCache,
    shared: &Shared,
    batch: &[ScoreReq],
) {
    // Fault injection fires before any cache mutation so a poisoned batch
    // leaves no half-written state behind.
    if let Some(fault) = take_batch_fault(shared) {
        if let Some(stall) = fault.slow {
            eprintln!("fault injection: stalling batch {}ms", stall.as_millis());
            std::thread::sleep(stall);
        }
        if fault.panic {
            panic!("fault injection: scorer panic mid-batch");
        }
    }

    let m = batch.len();
    let d = table_t.shape()[0];
    let max_len = model.max_len();
    let mut span = ist_obs::Span::enter("serve.batch");
    span.add_field("size", m);
    BATCH_SIZE.record(m as u64);
    // Stage probes are batch-granular: the cache/encode/score work is
    // shared by every request in the batch, so each traced request gets
    // the same interval. One branch when nothing in the batch is traced.
    let any_ctx = batch.iter().any(|r| r.ctx.is_some());
    let stage_started = any_ctx.then(Instant::now);

    // Cache lookup on the *effective* history — the last max_len items are
    // all the encoder ever sees, so longer keys would only split hits.
    let keys: Vec<Vec<usize>> = batch
        .iter()
        .map(|r| r.history[r.history.len().saturating_sub(max_len)..].to_vec())
        .collect();
    let mut rows: Vec<Option<Vec<f32>>> = keys
        .iter()
        .map(|key| cache.get(key).map(<[f32]>::to_vec))
        .collect();
    let hits: Vec<bool> = rows.iter().map(Option::is_some).collect();
    let encode_started = stage_started.map(|t| {
        let now = Instant::now();
        for req in batch {
            if let Some(c) = &req.ctx {
                c.record(Stage::Cache, now.saturating_duration_since(t));
            }
        }
        now
    });

    // One forward pass over the unique missing histories.
    let mut miss_keys: Vec<&[usize]> = Vec::new();
    let mut miss_index: HashMap<&[usize], usize> = HashMap::new();
    for (row, key) in rows.iter().zip(&keys) {
        if row.is_none() && !miss_index.contains_key(key.as_slice()) {
            miss_index.insert(key, miss_keys.len());
            miss_keys.push(key);
        }
    }
    span.add_field("misses", miss_keys.len());
    if !miss_keys.is_empty() {
        let fresh = model.infer_last_repr(&miss_keys);
        for (row, key) in rows.iter_mut().zip(&keys) {
            if row.is_none() {
                let at = miss_index[key.as_slice()];
                *row = Some(fresh.data()[at * d..(at + 1) * d].to_vec());
            }
        }
        for (key, &at) in &miss_index {
            cache.insert(key.to_vec(), fresh.data()[at * d..(at + 1) * d].to_vec());
        }
    }
    if let Some(t) = encode_started {
        let dur = t.elapsed();
        for (req, &hit) in batch.iter().zip(&hits) {
            if let Some(c) = &req.ctx {
                c.record(Stage::Encode, dur);
                c.set_batch_info(hit, m, plan.num_shards());
            }
        }
    }

    // Publish counters *before* filling any slot: a caller that wakes up
    // from its response must already see this batch in `stats()`.
    shared.requests.fetch_add(m as u64, Ordering::Relaxed);
    shared.batches.fetch_add(1, Ordering::Relaxed);
    shared.max_batch.fetch_max(m as u64, Ordering::Relaxed);
    let (hits, misses) = cache.stats();
    shared.cache_hits.store(hits, Ordering::Relaxed);
    shared.cache_misses.store(misses, Ordering::Relaxed);

    // Catalog scoring runs shard by shard (see [`crate::shard`]): each
    // column block of the item table is one GEMM + bounded-heap top-K
    // while the block's scores are cache-hot, and the per-shard lists
    // merge under the same rank order a single global heap would use —
    // scores and ranking are bitwise independent of the shard count, the
    // batch makeup, and the pool size. A row that failed to resolve fails
    // only its own request.
    let mut resolved: Vec<usize> = Vec::with_capacity(m);
    let mut stacked: Vec<f32> = Vec::with_capacity(m * d);
    for (i, (row, req)) in rows.iter().zip(batch).enumerate() {
        match row {
            Some(r) => {
                resolved.push(i);
                stacked.extend_from_slice(r);
            }
            None => {
                if let Some(c) = &req.ctx {
                    c.mark_filled();
                }
                req.slot.fill(Err(ServeError::Internal(
                    "representation row unresolved after forward pass".into(),
                )));
            }
        }
    }
    if resolved.is_empty() {
        return;
    }
    let ks: Vec<usize> = resolved.iter().map(|&i| batch[i].k).collect();
    let reprs = Tensor::from_vec(stacked, &[resolved.len(), d]);
    let (ranked, timing) = score_sharded_timed(&reprs, table_t, &ks, plan);

    for (&i, items) in resolved.iter().zip(ranked) {
        let req = &batch[i];
        if let Some(c) = &req.ctx {
            c.record(Stage::Score, timing.score);
            c.record(Stage::Merge, timing.merge);
            c.mark_filled();
        }
        req.slot.fill(
            items
                .map(|items| ServeResponse {
                    items,
                    degraded: false,
                })
                .map_err(ServeError::Internal),
        );
    }
}
