//! Regenerates **Table 5**: the ablation study (ISRec vs w/o GNN vs
//! w/o GNN&Intent vs the +concept baselines) on the Beauty- and ML-1m-like
//! worlds.

use isrec_core::TrainConfig;
use ist_bench::worlds::{max_len_for, world, Scale};
use ist_data::WorldConfig;
use ist_eval::report::render_ablation_block;
use ist_eval::{run_suite, ModelSpec, ProtocolConfig};

fn main() {
    let scale = Scale::from_args();
    let specs = ModelSpec::table5();
    println!("Table 5 — ISRec variants and concept-augmented baselines (scale {scale:?})\n");
    for cfg in [WorldConfig::beauty_like(), WorldConfig::ml1m_like()] {
        let ds = world(cfg, scale);
        let max_len = max_len_for(&ds.name);
        let train = TrainConfig {
            epochs: scale.epochs(),
            lr: 5e-3,
            batch_size: 64,
            ..Default::default()
        };
        let proto = ProtocolConfig {
            max_users: scale.max_eval_users(),
            ..Default::default()
        };
        let cells = run_suite(&specs, &ds, &train, &proto, max_len, 5);
        println!("{}", render_ablation_block(&ds.name, &cells));
    }
}
